/**
 * @file
 * A small typed key/value configuration store.
 *
 * Experiment harnesses populate a Config; device constructors read their
 * parameters from it with defaults, so a single object can describe a
 * whole system configuration (paper Table IV plus PIM parameters).
 *
 * A ConfigSchema makes the store strict: validate() type-checks and
 * range-checks every entry against the declared keys and flags
 * unknown keys, so a typo'd parameter fails fast instead of silently
 * falling back to a default.
 */

#ifndef HPIM_SIM_CONFIG_HH
#define HPIM_SIM_CONFIG_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "sim/logging.hh"

namespace hpim::sim {

/** Value categories a Config entry (and a schema key) can have. */
enum class ConfigType { Double, Int, Bool, String };

/** One declared key: its type, whether it must exist, and -- for
 *  numeric types -- the closed range of acceptable values. */
struct ConfigKeySpec
{
    std::string key;
    ConfigType type = ConfigType::Double;
    bool required = false;
    double minValue = std::numeric_limits<double>::lowest();
    double maxValue = std::numeric_limits<double>::max();
};

/** Set of declared keys a Config is validated against. */
struct ConfigSchema
{
    std::vector<ConfigKeySpec> keys;
    /** When false (default), keys absent from the schema are errors. */
    bool allowUnknown = false;
};

/** Typed key/value store: double, int64, bool or string values. */
class Config
{
  public:
    using Value = std::variant<double, std::int64_t, bool, std::string>;

    Config() = default;

    void set(const std::string &key, double v) { _values[key] = v; }
    void set(const std::string &key, std::int64_t v) { _values[key] = v; }
    void set(const std::string &key, int v)
    { _values[key] = static_cast<std::int64_t>(v); }
    void set(const std::string &key, bool v) { _values[key] = v; }
    void set(const std::string &key, const std::string &v)
    { _values[key] = v; }
    void set(const std::string &key, const char *v)
    { _values[key] = std::string(v); }

    bool has(const std::string &key) const
    { return _values.count(key) != 0; }

    /** @return double value, accepting an int64 entry too. */
    double getDouble(const std::string &key, double fallback) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Required variants: fatal() when the key is missing. */
    double requireDouble(const std::string &key) const;
    std::int64_t requireInt(const std::string &key) const;
    bool requireBool(const std::string &key) const;
    std::string requireString(const std::string &key) const;

    /** Merge @p other into this config, overwriting duplicates. */
    void merge(const Config &other);

    /** All keys currently set, in sorted order. */
    std::vector<std::string> keys() const;

    /**
     * Check every entry against @p schema: declared type (numeric
     * coercion between int and double is accepted), declared range,
     * required keys present, and -- unless schema.allowUnknown --
     * no keys outside the schema.
     * @return one human-readable message per violation; empty = valid
     */
    std::vector<std::string> validate(const ConfigSchema &schema) const;

    /** validate(), then fatal() listing every violation. */
    void validateOrDie(const ConfigSchema &schema) const;

    std::size_t size() const { return _values.size(); }

  private:
    std::map<std::string, Value> _values;
};

} // namespace hpim::sim

#endif // HPIM_SIM_CONFIG_HH
