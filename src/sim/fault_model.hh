/**
 * @file
 * Deterministic fault injection for the simulated PIM stack.
 *
 * Real PIM hardware is not the uniformly reliable device the paper's
 * evaluation assumes: per-unit variability, hard bank failures and
 * thermal throttling all shift capacity under a running schedule (the
 * UPMEM characterization, arXiv:2207.07886, reports exactly this).
 * A FaultModel turns a FaultConfig into a reproducible fault schedule:
 *
 *  - transient unit faults  -- an offloaded attempt completes but its
 *    result fails verification and must be re-executed;
 *  - kernel stalls          -- a programmable-PIM kernel hangs and is
 *    only reclaimed by the runtime's per-op watchdog timeout;
 *  - permanent bank kills   -- whole fixed-function banks retire from
 *    the malleable pool at drawn points in simulated time;
 *  - thermal throttling     -- banks whose steady-state temperature
 *    (model::solveThermal) exceeds a threshold duty-cycle offline.
 *
 * Everything is drawn from a private Rng stream seeded from
 * FaultConfig::seed, so a fault schedule is a pure function of the
 * config: bit-identical across reruns, worker counts and sweep
 * orderings. Kills are drawn as a sequential distinct-bank walk, so
 * the kill set for `killBanks = k` is a prefix of the set for `k + 1`
 * under the same seed -- capacity-vs-kills sweeps are monotone by
 * construction.
 *
 * The model lives in sim and knows nothing about pim/model types: the
 * caller supplies per-bank unit counts and (optionally) per-bank
 * steady-state temperatures as plain vectors.
 */

#ifndef HPIM_SIM_FAULT_MODEL_HH
#define HPIM_SIM_FAULT_MODEL_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace hpim::sim {

/** Fault-injection knobs; all off by default (zero-cost when off). */
struct FaultConfig
{
    /** Master switch; false keeps every simulated run bit-identical
     *  to a build without the fault layer. */
    bool enabled = false;

    // ---- Transient faults / stalls (per offload attempt).
    /** P(an offloaded attempt fails result verification). */
    double transientRatePerOp = 0.0;
    /** P(a programmable-PIM kernel launch stalls forever). */
    double stallRatePerOp = 0.0;

    // ---- Retry policy.
    /** Attempts per degradation rung before the op drops a rung
     *  (fixed-function -> programmable PIM -> CPU). */
    std::uint32_t maxAttempts = 3;
    /** First retry delay; doubles per attempt (exponential backoff). */
    double backoffBaseSec = 2e-5;
    /** Backoff ceiling. */
    double backoffCapSec = 5e-3;
    /** Watchdog timeout = max(floor, mult x expected duration). */
    double stallTimeoutMult = 4.0;
    double stallTimeoutFloorSec = 1e-4;

    // ---- Permanent bank failures.
    /** Fixed-function banks that fail hard (clamped to bank count). */
    std::uint32_t killBanks = 0;
    /** Kill times are drawn uniformly from [0, killSpreadSec). */
    double killSpreadSec = 0.05;

    // ---- Thermal throttling.
    /** Banks whose solved steady-state temperature exceeds this
     *  duty-cycle offline. The defaults never trip at stock clocks;
     *  lower the threshold (or raise frequencyScale) to engage it. */
    double throttleTempC = 85.0;
    double throttlePeriodSec = 2e-3;
    /** Fraction of each period a hot bank spends throttled. */
    double throttleDutyFrac = 0.25;

    /** Seed of the fault schedule's private Rng stream. */
    std::uint64_t seed = defaultSeed;
};

/** One permanent bank failure. */
struct BankKill
{
    double timeSec = 0.0;
    std::uint32_t bank = 0;
};

/** Periodic throttle pattern of one thermally-limited bank. */
struct ThrottleSpec
{
    std::uint32_t bank = 0;
    double firstStartSec = 0.0; ///< phase offset of the first window
    double onSec = 0.0;         ///< throttled span per period
    double offSec = 0.0;        ///< healthy span per period
};

/** The fault schedule + per-attempt draws. See file comment. */
class FaultModel
{
  public:
    /** Outcome drawn for one offload attempt. */
    enum class Attempt { Success, Transient, Stall };

    /**
     * @param config fault knobs (enabled is not re-checked here)
     * @param units_per_bank fixed-pool units hosted by each bank
     * @param bank_temp_c solved steady-state temperature per bank;
     *        empty disables thermal throttling
     */
    FaultModel(const FaultConfig &config,
               std::vector<std::uint32_t> units_per_bank,
               std::vector<double> bank_temp_c = {});

    const FaultConfig &config() const { return _config; }

    /** Permanent failures, sorted by time. */
    const std::vector<BankKill> &kills() const { return _kills; }

    /** Throttle patterns of the banks above the thermal threshold. */
    const std::vector<ThrottleSpec> &throttles() const
    { return _throttles; }

    /** Units hosted by bank @p bank. */
    std::uint32_t unitsInBank(std::uint32_t bank) const;

    /**
     * Draw the outcome of one offload attempt (advances the stream).
     * @param can_stall true for programmable-PIM kernel launches
     */
    Attempt drawAttempt(bool can_stall);

    /** Backoff before retry number @p attempt (1-based), seconds. */
    double backoffSec(std::uint32_t attempt) const;

    /** Watchdog timeout for a kernel expected to take @p expected_sec. */
    double stallTimeoutSec(double expected_sec) const;

  private:
    FaultConfig _config;
    std::vector<std::uint32_t> _units_per_bank;
    Rng _rng;
    std::vector<BankKill> _kills;
    std::vector<ThrottleSpec> _throttles;
};

} // namespace hpim::sim

#endif // HPIM_SIM_FAULT_MODEL_HH
