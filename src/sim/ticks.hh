/**
 * @file
 * Simulation time base.
 *
 * A Tick is one picosecond of simulated time. All device models convert
 * their clock frequencies into tick periods through this header so that
 * frequency-scaling experiments (paper Fig. 11/17) only change one number.
 */

#ifndef HPIM_SIM_TICKS_HH
#define HPIM_SIM_TICKS_HH

#include <cstdint>

#include "sim/logging.hh"

namespace hpim::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Number of ticks per simulated second (1 tick = 1 ps). */
constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

/** The far-future sentinel. */
constexpr Tick maxTick = ~Tick(0);

/** Convert seconds (double) to ticks, rounding to nearest. */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(ticksPerSecond)
                             + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(ticksPerSecond);
}

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return secondsToTicks(ns * 1e-9);
}

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return secondsToTicks(us * 1e-6);
}

/** Convert milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return secondsToTicks(ms * 1e-3);
}

/** Convert ticks to milliseconds. */
constexpr double
ticksToMs(Tick ticks)
{
    return ticksToSeconds(ticks) * 1e3;
}

/**
 * A clock domain: a frequency plus the derived tick period.
 *
 * Device models hold a ClockDomain and express latencies in cycles;
 * scaling experiments swap the domain.
 */
class ClockDomain
{
  public:
    /** @param hz clock frequency in Hertz; must be positive. */
    explicit ClockDomain(double hz)
        : _hz(hz)
    {
        fatal_if(hz <= 0.0, "clock frequency must be positive, got ", hz);
        _period = static_cast<Tick>(
            static_cast<double>(ticksPerSecond) / hz + 0.5);
        fatal_if(_period == 0, "clock frequency ", hz, " Hz too fast for ",
                 "a 1 ps tick base");
    }

    /** @return frequency in Hz. */
    double hz() const { return _hz; }

    /** @return tick period of one cycle. */
    Tick period() const { return _period; }

    /** Convert a cycle count to ticks. */
    Tick cyclesToTicks(std::uint64_t cycles) const
    { return cycles * _period; }

    /** Convert ticks to (floor) cycles. */
    std::uint64_t ticksToCycles(Tick t) const { return t / _period; }

    /** @return a domain scaled by the given frequency multiplier. */
    ClockDomain scaled(double factor) const
    { return ClockDomain(_hz * factor); }

  private:
    double _hz;
    Tick _period;
};

} // namespace hpim::sim

#endif // HPIM_SIM_TICKS_HH
