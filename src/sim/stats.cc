#include "sim/stats.hh"

#include <iomanip>
#include <numeric>

namespace hpim::sim {

double
VectorStat::total() const
{
    return std::accumulate(_values.begin(), _values.end(), 0.0);
}

HistogramStat::HistogramStat(double min, double max, std::size_t buckets)
    : _min(min), _max(max)
{
    fatal_if(buckets == 0, "histogram needs at least one bucket");
    fatal_if(max <= min, "histogram range [", min, ", ", max,
             ") is empty");
    _bucket_width = (max - min) / static_cast<double>(buckets);
    _counts.assign(buckets, 0);
}

void
HistogramStat::sample(double v, std::uint64_t count)
{
    _samples += count;
    _sum += v * static_cast<double>(count);
    if (v < _min) {
        _underflow += count;
    } else if (v >= _max) {
        _overflow += count;
    } else {
        auto idx = static_cast<std::size_t>((v - _min) / _bucket_width);
        if (idx >= _counts.size())
            idx = _counts.size() - 1; // fp rounding at the upper edge
        _counts[idx] += count;
    }
}

std::uint64_t
HistogramStat::bucketCount(std::size_t i) const
{
    panic_if(i >= _counts.size(), "histogram bucket ", i, " out of range");
    return _counts[i];
}

double
HistogramStat::mean() const
{
    return _samples == 0 ? 0.0 : _sum / static_cast<double>(_samples);
}

void
HistogramStat::reset()
{
    for (auto &c : _counts)
        c = 0;
    _underflow = _overflow = _samples = 0;
    _sum = 0.0;
}

ScalarStat &
StatGroup::scalar(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = _stats.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return it->second.stat;
}

bool
StatGroup::hasScalar(const std::string &name) const
{
    return _stats.count(name) != 0;
}

double
StatGroup::lookup(const std::string &name) const
{
    auto it = _stats.find(name);
    fatal_if(it == _stats.end(), "no stat named '", name, "' in group '",
             _name, "'");
    return it->second.stat.value();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, entry] : _stats) {
        os << _name << '.' << std::left << std::setw(32) << name
           << " = " << entry.stat.value();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << '\n';
    }
}

void
StatGroup::resetAll()
{
    for (auto &[name, entry] : _stats)
        entry.stat.reset();
}

} // namespace hpim::sim
