#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace hpim::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
Rng::streamSeed(std::uint64_t base, std::uint64_t stream)
{
    // Offset the base by a golden-ratio multiple of the stream index,
    // then mix twice; a plain (base + stream) would hand adjacent
    // points nearly-identical splitmix64 trajectories.
    std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    std::uint64_t mixed = splitmix64(s);
    return splitmix64(s) ^ rotl(mixed, 23);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : _state)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    panic_if(bound == 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::inRange(std::int64_t lo, std::int64_t hi)
{
    panic_if(lo > hi, "Rng::inRange with lo > hi");
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : below(span));
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (_have_cached) {
        _have_cached = false;
        return _cached;
    }
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) // avoid log(0)
        u1 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * M_PI * u2;
    _cached = radius * std::sin(angle);
    _have_cached = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

} // namespace hpim::sim
