/**
 * @file
 * Deterministic non-cryptographic hashing (FNV-1a).
 *
 * One shared primitive for every subsystem that needs a stable,
 * platform-independent 64-bit digest: the sweep journal's grid/point
 * hashes, nn::Graph signatures and the sim::MemoCache keys. All of
 * them must produce the same value across runs, jobs counts and
 * machines, which rules out std::hash.
 */

#ifndef HPIM_SIM_HASH_HH
#define HPIM_SIM_HASH_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace hpim::sim {

constexpr std::uint64_t fnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

/** FNV-1a over raw bytes, continuing from @p seed. */
inline std::uint64_t
hashBytes(const void *data, std::size_t size,
          std::uint64_t seed = fnvOffsetBasis)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= fnvPrime;
    }
    return hash;
}

/** hashBytes over a string's characters. */
inline std::uint64_t
hashString(std::string_view text, std::uint64_t seed = fnvOffsetBasis)
{
    return hashBytes(text.data(), text.size(), seed);
}

/** hashBytes over one little-endian 64-bit word. */
inline std::uint64_t
hashU64(std::uint64_t value, std::uint64_t seed = fnvOffsetBasis)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    return hashBytes(bytes, sizeof bytes, seed);
}

/** hashU64 over a double's bit pattern (distinguishes -0.0 / 0.0). */
inline std::uint64_t
hashDouble(double value, std::uint64_t seed = fnvOffsetBasis)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&bits, &value, sizeof bits);
    return hashU64(bits, seed);
}

} // namespace hpim::sim

#endif // HPIM_SIM_HASH_HH
