#include "sim/deadline.hh"

#include <atomic>
#include <cstdio>

namespace hpim::sim {

namespace {

thread_local const Deadline *t_current = nullptr;

/** Drain hard-stop; relaxed is enough (a flag, no data it guards). */
std::atomic<bool> g_global_stop{false};

} // namespace

std::string
DeadlineExceeded::formatMs(double ms)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", ms);
    return buf;
}

Deadline
Deadline::afterMs(double ms)
{
    if (ms < 0.0)
        ms = 0.0;
    auto budget = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
    return Deadline(Clock::now() + budget, ms);
}

double
Deadline::remainingMs() const
{
    return std::chrono::duration<double, std::milli>(_expiry
                                                     - Clock::now())
        .count();
}

DeadlineScope::DeadlineScope(const Deadline &deadline)
    : _deadline(deadline), _saved(t_current)
{
    // An inner scope may only tighten: keep the earlier expiry.
    if (_saved != nullptr && _saved->expiry() < _deadline.expiry())
        _deadline = *_saved;
    t_current = &_deadline;
}

DeadlineScope::~DeadlineScope()
{
    t_current = _saved;
}

const Deadline *
DeadlineScope::current()
{
    return t_current;
}

void
checkDeadline(const char *phase)
{
    const Deadline *deadline = t_current;
    if (deadline != nullptr && deadline->expired())
        throw DeadlineExceeded(phase, deadline->budgetMs());
    if (g_global_stop.load(std::memory_order_relaxed))
        throw DeadlineExceeded(phase, 0.0);
}

void
armGlobalStop()
{
    g_global_stop.store(true, std::memory_order_relaxed);
}

void
disarmGlobalStop()
{
    g_global_stop.store(false, std::memory_order_relaxed);
}

bool
globalStopArmed()
{
    return g_global_stop.load(std::memory_order_relaxed);
}

} // namespace hpim::sim
