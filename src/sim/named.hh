/**
 * @file
 * Base class giving simulation components a hierarchical name.
 */

#ifndef HPIM_SIM_NAMED_HH
#define HPIM_SIM_NAMED_HH

#include <string>
#include <utility>

namespace hpim::sim {

/** Mixin providing a stable, hierarchical component name. */
class Named
{
  public:
    explicit Named(std::string name) : _name(std::move(name)) {}
    virtual ~Named() = default;

    /** @return the full hierarchical name, e.g. "hmc.vault3.bank1". */
    const std::string &name() const { return _name; }

    /** @return a child name under this component. */
    std::string childName(const std::string &leaf) const
    { return _name + "." + leaf; }

  private:
    std::string _name;
};

} // namespace hpim::sim

#endif // HPIM_SIM_NAMED_HH
