#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hpim::sim {

Event::~Event()
{
    panic_if(_scheduled, "destroying a scheduled event");
}

void
EventQueue::schedule(Event *event, Tick when)
{
    panic_if(event == nullptr, "scheduling a null event");
    panic_if(event->_scheduled, "double-scheduling event: ",
             event->description());
    panic_if(when < _now, "scheduling event '", event->description(),
             "' in the past: ", when, " < now ", _now);

    event->_when = when;
    event->_sequence = _next_sequence++;
    event->_scheduled = true;
    event->_squashed = false;
    _heap.push(Entry{when, event->priority(), event->_sequence, event});
    ++_live_count;
}

void
EventQueue::deschedule(Event *event)
{
    panic_if(event == nullptr, "descheduling a null event");
    panic_if(!event->_scheduled, "descheduling an unscheduled event");
    // Lazy deletion: mark squashed; the heap entry is skipped on pop.
    event->_scheduled = false;
    event->_squashed = true;
    --_live_count;
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->_scheduled)
        deschedule(event);
    schedule(event, when);
}

Tick
EventQueue::nextEventTick() const
{
    // Skip squashed entries without mutating state: the heap top may be
    // stale, so scan a copy only when the top is squashed (rare).
    if (_live_count == 0)
        return maxTick;
    auto heap_copy = _heap;
    while (!heap_copy.empty()) {
        const Entry &top = heap_copy.top();
        if (top.event->_scheduled && top.event->_sequence == top.sequence)
            return top.when;
        heap_copy.pop();
    }
    return maxTick;
}

bool
EventQueue::runOne()
{
    while (!_heap.empty()) {
        Entry top = _heap.top();
        _heap.pop();
        Event *ev = top.event;
        // A stale entry: the event was descheduled (and possibly
        // rescheduled, giving it a new sequence number).
        if (!ev->_scheduled || ev->_sequence != top.sequence)
            continue;
        panic_if(top.when < _now, "event time went backwards");
        _now = top.when;
        ev->_scheduled = false;
        --_live_count;
        ++_processed;
        ev->process();
        return true;
    }
    return false;
}

void
EventQueue::runAll(std::uint64_t limit)
{
    std::uint64_t ran = 0;
    while (runOne()) {
        if (++ran >= limit) {
            warn("event queue hit run limit of ", limit, " events");
            return;
        }
    }
}

void
EventQueue::runUntil(Tick until)
{
    while (_live_count > 0 && nextEventTick() <= until)
        runOne();
    _now = std::max(_now, until);
}

void
EventQueue::scheduleCallback(Tick when, std::function<void()> callback,
                             Event::Priority priority)
{
    auto *ev = new LambdaEvent(std::move(callback), priority);
    _owned.push_back(ev);
    schedule(ev, when);
}

EventQueue::~EventQueue()
{
    for (Event *ev : _owned) {
        if (ev->scheduled())
            deschedule(ev);
        delete ev;
    }
}

} // namespace hpim::sim
