#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hpim::sim {

namespace {

/** Heap arity: 4 children per node keeps the tree shallow and the
 *  sift loops cache-friendly (children are contiguous). */
constexpr std::size_t kArity = 4;

} // namespace

Event::~Event()
{
    panic_if(_scheduled, "destroying a scheduled event");
}

void
EventQueue::siftUp(std::size_t i)
{
    Entry entry = _heap[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / kArity;
        if (!entry.before(_heap[parent]))
            break;
        placeAt(i, _heap[parent]);
        i = parent;
    }
    placeAt(i, entry);
}

void
EventQueue::siftDown(std::size_t i)
{
    Entry entry = _heap[i];
    const std::size_t size = _heap.size();
    while (true) {
        std::size_t first_child = i * kArity + 1;
        if (first_child >= size)
            break;
        std::size_t last_child =
            std::min(first_child + kArity, size);
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (_heap[c].before(_heap[best]))
                best = c;
        }
        if (!_heap[best].before(entry))
            break;
        placeAt(i, _heap[best]);
        i = best;
    }
    placeAt(i, entry);
}

void
EventQueue::removeAt(std::size_t i)
{
    Entry last = _heap.back();
    _heap.pop_back();
    if (i == _heap.size())
        return; // removed the trailing slot
    placeAt(i, last);
    // The filler may violate the heap property in either direction
    // relative to its new neighbourhood.
    if (i > 0 && last.before(_heap[(i - 1) / kArity]))
        siftUp(i);
    else
        siftDown(i);
}

void
EventQueue::schedule(Event *event, Tick when)
{
    panic_if(event == nullptr, "scheduling a null event");
    panic_if(event->_scheduled, "double-scheduling event: ",
             event->description());
    panic_if(when < _now, "scheduling event '", event->description(),
             "' in the past: ", when, " < now ", _now);

    event->_when = when;
    event->_sequence = _next_sequence++;
    event->_scheduled = true;
    event->_heap_index = _heap.size();
    _heap.push_back(
        Entry{when, event->priority(), event->_sequence, event});
    siftUp(_heap.size() - 1);
}

void
EventQueue::deschedule(Event *event)
{
    panic_if(event == nullptr, "descheduling a null event");
    panic_if(!event->_scheduled, "descheduling an unscheduled event");
    std::size_t i = event->_heap_index;
    if (i & kBatchFlag) {
        // The event sits in the extracted same-tick batch; null its
        // slot (the serve loop skips nulls) instead of touching the
        // heap.
        std::size_t slot = i & ~kBatchFlag;
        panic_if(slot >= _batch.size() || _batch[slot].event != event,
                 "event batch index out of sync");
        event->_scheduled = false;
        _batch[slot].event = nullptr;
        --_batch_live;
        return;
    }
    panic_if(i >= _heap.size() || _heap[i].event != event,
             "event heap index out of sync");
    event->_scheduled = false;
    removeAt(i);
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->_scheduled)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::maybeCoalesce()
{
    // Cheap trigger: a same-tick storm shows up as root children
    // sharing the root's tick. The heap property makes every ancestor
    // of a same-tick entry same-tick too, so all of them form one
    // subtree hanging off the root -- a DFS that only follows
    // matching children visits exactly the storm.
    const std::size_t size = _heap.size();
    if (size < kCoalesceMin)
        return;
    const Tick when = _heap.front().when;
    std::size_t same_tick_children = 0;
    for (std::size_t c = 1; c < std::min<std::size_t>(kArity + 1, size);
         ++c) {
        if (_heap[c].when == when)
            ++same_tick_children;
    }
    if (same_tick_children == 0)
        return;

    std::vector<std::size_t> stack{0};
    std::vector<std::size_t> taken;
    while (!stack.empty()) {
        std::size_t i = stack.back();
        stack.pop_back();
        taken.push_back(i);
        std::size_t first_child = i * kArity + 1;
        std::size_t last_child =
            std::min(first_child + kArity, size);
        for (std::size_t c = first_child; c < last_child; ++c) {
            if (_heap[c].when == when)
                stack.push_back(c);
        }
    }
    if (taken.size() < kCoalesceMin)
        return;

    // Extract the storm: move its entries to _batch (flagging their
    // back-pointers), compact the survivors and re-heapify them once
    // (Floyd) instead of popping the batch through the heap N times.
    _batch.clear();
    _batch.reserve(taken.size());
    for (std::size_t i : taken) {
        _heap[i].event->_heap_index = kBatchFlag;
        _batch.push_back(_heap[i]);
    }
    std::sort(_batch.begin(), _batch.end(),
              [](const Entry &a, const Entry &b) {
                  return a.before(b);
              });
    for (std::size_t slot = 0; slot < _batch.size(); ++slot)
        _batch[slot].event->_heap_index = kBatchFlag | slot;
    _batch_pos = 0;
    _batch_live = _batch.size();
    _batch_when = when;

    std::size_t out = 0;
    for (std::size_t i = 0; i < size; ++i) {
        if ((_heap[i].event->_heap_index & kBatchFlag) == 0)
            _heap[out++] = _heap[i];
    }
    _heap.resize(out);
    if (out > 0) {
        for (std::size_t i = 0; i < out; ++i)
            _heap[i].event->_heap_index = i;
        for (std::size_t i = (out - 1) / kArity + 1; i-- > 0;)
            siftDown(i);
    }
}

bool
EventQueue::runOne()
{
    // Skip served/descheduled batch slots; drop a fully drained batch.
    while (_batch_pos < _batch.size()
           && _batch[_batch_pos].event == nullptr)
        ++_batch_pos;
    if (_batch_pos >= _batch.size() && !_batch.empty()) {
        _batch.clear();
        _batch_pos = 0;
        _batch_live = 0;
    }

    if (_batch.empty() && !_heap.empty()) {
        maybeCoalesce();
        // A fresh batch starts at slot 0 with no nulls.
    }

    Entry top;
    bool from_batch = false;
    if (_batch_pos < _batch.size()) {
        // Merge point: the batch head runs unless an entry scheduled
        // onto the heap (possibly *during* this batch's drain) orders
        // strictly before it -- dispatch order stays exactly the
        // strict (when, priority, sequence) total order.
        const Entry &head = _batch[_batch_pos];
        if (_heap.empty() || !_heap.front().before(head)) {
            top = head;
            from_batch = true;
        } else {
            top = _heap.front();
        }
    } else if (!_heap.empty()) {
        top = _heap.front();
    } else {
        return false;
    }

    Event *ev = top.event;
    panic_if(top.when < _now, "event time went backwards");
    ev->_scheduled = false;
    if (from_batch) {
        _batch[_batch_pos].event = nullptr;
        ++_batch_pos;
        --_batch_live;
    } else {
        removeAt(0);
    }
    _now = top.when;
    ++_processed;
    ev->process();
    return true;
}

void
EventQueue::runAll(std::uint64_t limit)
{
    std::uint64_t ran = 0;
    while (runOne()) {
        if (++ran >= limit) {
            warn("event queue hit run limit of ", limit, " events");
            return;
        }
    }
}

void
EventQueue::runUntil(Tick until)
{
    while (!empty() && nextEventTick() <= until)
        runOne();
    _now = std::max(_now, until);
}

EventQueue::PooledCallback *
EventQueue::acquireCallback()
{
    if (!_callback_free.empty()) {
        PooledCallback *ev = _callback_free.back();
        _callback_free.pop_back();
        return ev;
    }
    _callback_storage.push_back(
        std::make_unique<PooledCallback>(*this));
    return _callback_storage.back().get();
}

EventQueue::~EventQueue()
{
    // Pooled callbacks may still be scheduled (a run can stop before
    // the queue drains); deschedule them so ~Event doesn't panic and
    // release their captures.
    for (const auto &ev : _callback_storage) {
        if (ev->scheduled())
            deschedule(ev.get());
        ev->disarm();
    }
}

} // namespace hpim::sim
