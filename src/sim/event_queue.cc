#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hpim::sim {

namespace {

/** Heap arity: 4 children per node keeps the tree shallow and the
 *  sift loops cache-friendly (children are contiguous). */
constexpr std::size_t kArity = 4;

} // namespace

Event::~Event()
{
    panic_if(_scheduled, "destroying a scheduled event");
}

void
EventQueue::siftUp(std::size_t i)
{
    Entry entry = _heap[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / kArity;
        if (!entry.before(_heap[parent]))
            break;
        placeAt(i, _heap[parent]);
        i = parent;
    }
    placeAt(i, entry);
}

void
EventQueue::siftDown(std::size_t i)
{
    Entry entry = _heap[i];
    const std::size_t size = _heap.size();
    while (true) {
        std::size_t first_child = i * kArity + 1;
        if (first_child >= size)
            break;
        std::size_t last_child =
            std::min(first_child + kArity, size);
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (_heap[c].before(_heap[best]))
                best = c;
        }
        if (!_heap[best].before(entry))
            break;
        placeAt(i, _heap[best]);
        i = best;
    }
    placeAt(i, entry);
}

void
EventQueue::removeAt(std::size_t i)
{
    Entry last = _heap.back();
    _heap.pop_back();
    if (i == _heap.size())
        return; // removed the trailing slot
    placeAt(i, last);
    // The filler may violate the heap property in either direction
    // relative to its new neighbourhood.
    if (i > 0 && last.before(_heap[(i - 1) / kArity]))
        siftUp(i);
    else
        siftDown(i);
}

void
EventQueue::schedule(Event *event, Tick when)
{
    panic_if(event == nullptr, "scheduling a null event");
    panic_if(event->_scheduled, "double-scheduling event: ",
             event->description());
    panic_if(when < _now, "scheduling event '", event->description(),
             "' in the past: ", when, " < now ", _now);

    event->_when = when;
    event->_sequence = _next_sequence++;
    event->_scheduled = true;
    event->_heap_index = _heap.size();
    _heap.push_back(
        Entry{when, event->priority(), event->_sequence, event});
    siftUp(_heap.size() - 1);
}

void
EventQueue::deschedule(Event *event)
{
    panic_if(event == nullptr, "descheduling a null event");
    panic_if(!event->_scheduled, "descheduling an unscheduled event");
    std::size_t i = event->_heap_index;
    panic_if(i >= _heap.size() || _heap[i].event != event,
             "event heap index out of sync");
    event->_scheduled = false;
    removeAt(i);
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->_scheduled)
        deschedule(event);
    schedule(event, when);
}

bool
EventQueue::runOne()
{
    if (_heap.empty())
        return false;
    Entry top = _heap.front();
    Event *ev = top.event;
    panic_if(top.when < _now, "event time went backwards");
    ev->_scheduled = false;
    removeAt(0);
    _now = top.when;
    ++_processed;
    ev->process();
    return true;
}

void
EventQueue::runAll(std::uint64_t limit)
{
    std::uint64_t ran = 0;
    while (runOne()) {
        if (++ran >= limit) {
            warn("event queue hit run limit of ", limit, " events");
            return;
        }
    }
}

void
EventQueue::runUntil(Tick until)
{
    while (!_heap.empty() && _heap.front().when <= until)
        runOne();
    _now = std::max(_now, until);
}

EventQueue::PooledCallback *
EventQueue::acquireCallback()
{
    if (!_callback_free.empty()) {
        PooledCallback *ev = _callback_free.back();
        _callback_free.pop_back();
        return ev;
    }
    _callback_storage.push_back(
        std::make_unique<PooledCallback>(*this));
    return _callback_storage.back().get();
}

EventQueue::~EventQueue()
{
    // Pooled callbacks may still be scheduled (a run can stop before
    // the queue drains); deschedule them so ~Event doesn't panic and
    // release their captures.
    for (const auto &ev : _callback_storage) {
        if (ev->scheduled())
            deschedule(ev.get());
        ev->disarm();
    }
}

} // namespace hpim::sim
