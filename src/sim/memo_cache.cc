#include "sim/memo_cache.hh"

#include <atomic>

namespace hpim::sim {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<int> g_suspended{0};

} // namespace

MemoCache &
MemoCache::instance()
{
    static MemoCache cache;
    return cache;
}

void
MemoCache::setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

bool
MemoCache::enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
MemoCache::suspend()
{
    g_suspended.fetch_add(1, std::memory_order_relaxed);
}

void
MemoCache::resume()
{
    g_suspended.fetch_sub(1, std::memory_order_relaxed);
}

bool
MemoCache::active()
{
    return enabled()
           && g_suspended.load(std::memory_order_relaxed) == 0;
}

std::shared_ptr<const void>
MemoCache::lookup(std::uint64_t key)
{
    if (!active())
        return nullptr;
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _entries.find(key);
    if (it == _entries.end()) {
        ++_misses;
        return nullptr;
    }
    ++_hits;
    return it->second;
}

void
MemoCache::insert(std::uint64_t key, std::shared_ptr<const void> value)
{
    if (!active() || value == nullptr)
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    // First writer wins: with several sweep workers racing, every
    // candidate value is the result of the identical computation, so
    // which one sticks cannot matter.
    if (_entries.emplace(key, std::move(value)).second)
        ++_insertions;
}

MemoCache::Stats
MemoCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return Stats{_hits, _misses, _insertions, _entries.size()};
}

void
MemoCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
    _hits = 0;
    _misses = 0;
    _insertions = 0;
}

} // namespace hpim::sim
