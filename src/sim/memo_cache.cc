#include "sim/memo_cache.hh"

#include <atomic>

namespace hpim::sim {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<int> g_suspended{0};

} // namespace

MemoCache &
MemoCache::instance()
{
    static MemoCache cache;
    return cache;
}

void
MemoCache::setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

bool
MemoCache::enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
MemoCache::suspend()
{
    g_suspended.fetch_add(1, std::memory_order_relaxed);
}

void
MemoCache::resume()
{
    g_suspended.fetch_sub(1, std::memory_order_relaxed);
}

bool
MemoCache::active()
{
    return enabled()
           && g_suspended.load(std::memory_order_relaxed) == 0;
}

std::shared_ptr<const void>
MemoCache::lookup(std::uint64_t key, bool partial)
{
    if (!active())
        return nullptr;
    std::shared_ptr<const void> found;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _entries.find(key);
        if (it != _entries.end())
            found = it->second;
    }
    if (found == nullptr)
        _misses.fetch_add(1, std::memory_order_relaxed);
    else if (partial)
        _partial_hits.fetch_add(1, std::memory_order_relaxed);
    else
        _hits.fetch_add(1, std::memory_order_relaxed);
    return found;
}

void
MemoCache::insert(std::uint64_t key, std::shared_ptr<const void> value)
{
    if (!active() || value == nullptr)
        return;
    std::uint64_t evicted = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        // First writer wins: with several sweep workers racing, every
        // candidate value is the result of the identical computation,
        // so which one sticks cannot matter.
        if (!_entries.emplace(key, std::move(value)).second)
            return;
        if (_max_entries != 0) {
            _insertion_order.push_back(key);
            while (_entries.size() > _max_entries
                   && !_insertion_order.empty()) {
                _entries.erase(_insertion_order.front());
                _insertion_order.pop_front();
                ++evicted;
            }
        }
    }
    _insertions.fetch_add(1, std::memory_order_relaxed);
    if (evicted != 0)
        _evictions.fetch_add(evicted, std::memory_order_relaxed);
}

void
MemoCache::setMaxEntries(std::size_t max)
{
    std::uint64_t evicted = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _max_entries = max;
        if (max == 0) {
            _insertion_order.clear();
        } else {
            // Entries inserted while unbounded carry no order record;
            // keep them (they can only serve hits) and start tracking
            // order from here, trimming any tracked overflow.
            while (_entries.size() > _max_entries
                   && !_insertion_order.empty()) {
                _entries.erase(_insertion_order.front());
                _insertion_order.pop_front();
                ++evicted;
            }
        }
    }
    if (evicted != 0)
        _evictions.fetch_add(evicted, std::memory_order_relaxed);
}

std::size_t
MemoCache::maxEntries() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _max_entries;
}

MemoCache::Stats
MemoCache::stats() const
{
    Stats s;
    s.hits = _hits.load(std::memory_order_relaxed);
    s.misses = _misses.load(std::memory_order_relaxed);
    s.partialHits = _partial_hits.load(std::memory_order_relaxed);
    s.insertions = _insertions.load(std::memory_order_relaxed);
    s.evictions = _evictions.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(_mutex);
    s.entries = _entries.size();
    return s;
}

void
MemoCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
    _insertion_order.clear();
    _hits.store(0, std::memory_order_relaxed);
    _misses.store(0, std::memory_order_relaxed);
    _partial_hits.store(0, std::memory_order_relaxed);
    _insertions.store(0, std::memory_order_relaxed);
    _evictions.store(0, std::memory_order_relaxed);
}

} // namespace hpim::sim
