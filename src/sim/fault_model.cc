#include "sim/fault_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace hpim::sim {

FaultModel::FaultModel(const FaultConfig &config,
                       std::vector<std::uint32_t> units_per_bank,
                       std::vector<double> bank_temp_c)
    : _config(config), _units_per_bank(std::move(units_per_bank)),
      _rng(config.seed)
{
    fatal_if(_config.transientRatePerOp < 0.0
                 || _config.transientRatePerOp > 1.0,
             "transientRatePerOp must be in [0, 1], got ",
             _config.transientRatePerOp);
    fatal_if(_config.stallRatePerOp < 0.0
                 || _config.stallRatePerOp > 1.0,
             "stallRatePerOp must be in [0, 1], got ",
             _config.stallRatePerOp);
    fatal_if(_config.maxAttempts == 0,
             "maxAttempts must be at least 1");

    const auto banks =
        static_cast<std::uint32_t>(_units_per_bank.size());

    // ---- Permanent kills: a sequential distinct-bank walk, so the
    // kill set for k banks is a prefix of the set for k + 1 under the
    // same seed (monotone capacity-vs-kills sweeps).
    std::uint32_t kills = std::min(_config.killBanks, banks);
    if (kills < _config.killBanks) {
        warn("killBanks ", _config.killBanks, " clamped to ", banks,
             " (bank count)");
    }
    std::vector<bool> dead(banks, false);
    for (std::uint32_t k = 0; k < kills; ++k) {
        std::uint32_t bank;
        do {
            bank = static_cast<std::uint32_t>(_rng.below(banks));
        } while (dead[bank]);
        dead[bank] = true;
        _kills.push_back(
            {_rng.uniform(0.0, _config.killSpreadSec), bank});
    }
    std::stable_sort(_kills.begin(), _kills.end(),
                     [](const BankKill &a, const BankKill &b) {
                         return a.timeSec < b.timeSec;
                     });

    // ---- Thermal throttling: banks above the threshold duty-cycle
    // offline with a per-bank phase offset.
    if (!bank_temp_c.empty()) {
        fatal_if(bank_temp_c.size() != _units_per_bank.size(),
                 "bank_temp_c has ", bank_temp_c.size(),
                 " entries for ", banks, " banks");
        double duty =
            std::clamp(_config.throttleDutyFrac, 0.0, 1.0);
        double period = std::max(_config.throttlePeriodSec, 1e-9);
        for (std::uint32_t b = 0; b < banks; ++b) {
            if (bank_temp_c[b] <= _config.throttleTempC
                || duty <= 0.0) {
                continue;
            }
            ThrottleSpec spec;
            spec.bank = b;
            spec.firstStartSec = _rng.uniform(0.0, period);
            spec.onSec = period * duty;
            spec.offSec = std::max(period - spec.onSec, 1e-9);
            _throttles.push_back(spec);
        }
    }
}

std::uint32_t
FaultModel::unitsInBank(std::uint32_t bank) const
{
    panic_if(bank >= _units_per_bank.size(), "bank ", bank,
             " out of range ", _units_per_bank.size());
    return _units_per_bank[bank];
}

FaultModel::Attempt
FaultModel::drawAttempt(bool can_stall)
{
    if (can_stall && _rng.chance(_config.stallRatePerOp))
        return Attempt::Stall;
    if (_rng.chance(_config.transientRatePerOp))
        return Attempt::Transient;
    return Attempt::Success;
}

double
FaultModel::backoffSec(std::uint32_t attempt) const
{
    double exp = attempt > 0 ? static_cast<double>(attempt - 1) : 0.0;
    return std::min(_config.backoffBaseSec * std::pow(2.0, exp),
                    _config.backoffCapSec);
}

double
FaultModel::stallTimeoutSec(double expected_sec) const
{
    return std::max(_config.stallTimeoutFloorSec,
                    _config.stallTimeoutMult * expected_sec);
}

} // namespace hpim::sim
