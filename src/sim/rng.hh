/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic choices in the simulator flow through an Rng instance so
 * runs are reproducible from a single seed.
 */

#ifndef HPIM_SIM_RNG_HH
#define HPIM_SIM_RNG_HH

#include <cstdint>

namespace hpim::sim {

/** Default base seed shared by the simulator and the sweep engine. */
constexpr std::uint64_t defaultSeed = 0x9e3779b97f4a7c15ULL;

/** xoshiro256** generator seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = defaultSeed);

    /**
     * Seed of independent stream @p stream under @p base.
     *
     * Decorrelates neighbouring stream indices through two splitmix64
     * rounds, so `Rng(streamSeed(base, i))` gives every experiment
     * point its own reproducible sequence that depends only on
     * (base, i) -- never on which worker thread runs the point or in
     * what order points complete.
     */
    static std::uint64_t streamSeed(std::uint64_t base,
                                    std::uint64_t stream);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t below(std::uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t inRange(std::int64_t lo, std::int64_t hi);

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /** @return standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** @return normal variate with given mean and stddev. */
    double normal(double mean, double stddev);

  private:
    std::uint64_t _state[4];
    bool _have_cached = false;
    double _cached = 0.0;
};

} // namespace hpim::sim

#endif // HPIM_SIM_RNG_HH
