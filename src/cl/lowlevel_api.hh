/**
 * @file
 * Low-level PIM control API (paper Table III, SectionIV-A).
 *
 * Functions for: (1) offloading an operation to specific PIM(s),
 * (2) tracking PIM busy status, (3) querying operation completion,
 * (4) querying computation and data location (which banks).
 * The runtime builds on these; examples can call them directly.
 */

#ifndef HPIM_CL_LOWLEVEL_API_HH
#define HPIM_CL_LOWLEVEL_API_HH

#include <cstdint>
#include <map>
#include <vector>

#include "mem/address_mapping.hh"
#include "pim/status_registers.hh"

namespace hpim::cl {

/** Handle returned by pimOffload. */
using PimOpHandle = std::uint64_t;

/** Where an offloaded operation runs and lives. */
struct PimLocation
{
    bool onProgrPim = false;
    std::vector<std::uint32_t> fixedBanks; ///< banks running units
    std::vector<std::uint32_t> dataBanks;  ///< banks holding the data
};

/**
 * The low-level PIM API over the hardware status registers.
 * All functions are host-side and non-blocking.
 */
class PimApi
{
  public:
    /**
     * @param regs the hardware status register file
     * @param mapping stack address mapping (for data location queries)
     */
    PimApi(hpim::pim::StatusRegisterFile &regs,
           const hpim::mem::AddressMapping &mapping)
        : _regs(regs), _mapping(mapping)
    {}

    /**
     * Offload an operation to fixed-function units near its data.
     *
     * Tries to acquire @p units_needed units starting with the banks
     * that hold [data_base, data_base + data_bytes); spills to other
     * banks when the local ones are full (buffering mechanisms,
     * SectionIV-D).
     *
     * @return handle, or 0 when not enough units anywhere
     */
    PimOpHandle offloadFixed(hpim::mem::Addr data_base,
                             std::uint64_t data_bytes,
                             std::uint32_t units_needed);

    /** Offload an operation to the programmable PIM.
     *  @return handle, or 0 when it is busy. */
    PimOpHandle offloadProgr();

    /** @return true if the given fixed bank has any busy unit. */
    bool fixedBankBusy(std::uint32_t bank) const
    { return _regs.bankBusy(bank); }

    /** @return true if the programmable PIM is busy. */
    bool progrBusy() const { return _regs.progrBusy(); }

    /** Mark an operation complete, releasing its resources. */
    void complete(PimOpHandle handle);

    /** @return true once complete() was called on the handle. */
    bool queryComplete(PimOpHandle handle) const;

    /** @return location info for a live operation. */
    PimLocation queryLocation(PimOpHandle handle) const;

    /** Banks covering [base, base+bytes) in the stack. */
    std::vector<std::uint32_t>
    dataBanks(hpim::mem::Addr base, std::uint64_t bytes) const;

  private:
    struct LiveOp
    {
        PimLocation location;
        /** (bank, units) acquisitions to release on completion. */
        std::vector<std::pair<std::uint32_t, std::uint32_t>> grants;
    };

    hpim::pim::StatusRegisterFile &_regs;
    const hpim::mem::AddressMapping &_mapping;
    std::map<PimOpHandle, LiveOp> _live;
    std::uint64_t _next_handle = 1;
};

} // namespace hpim::cl

#endif // HPIM_CL_LOWLEVEL_API_HH
