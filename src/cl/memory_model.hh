/**
 * @file
 * The extended memory model (paper Table II, SectionIII-B).
 *
 * A single global memory shared by the host and all PIMs in one
 * physical address space -- no data copies around kernel calls.
 * Consistency is relaxed: a fixed-function PIM's updates become
 * visible to other agents only at the end of the kernel call
 * (epoch boundaries). Explicit synchronization objects (barriers and
 * global lock variables) order accesses between CPU and PIMs.
 */

#ifndef HPIM_CL_MEMORY_MODEL_HH
#define HPIM_CL_MEMORY_MODEL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mem/address_mapping.hh"

namespace hpim::cl {

/** A buffer allocated in the shared global memory. */
struct GlobalBuffer
{
    std::uint64_t id = 0;
    hpim::mem::Addr base = 0;
    std::uint64_t bytes = 0;
    std::string label;
};

/** Memory agents for visibility tracking. */
enum class Agent { Host, ProgrPim, FixedPim };

/**
 * The shared global memory: a bump allocator over the stack's address
 * space plus epoch-based visibility tracking for the relaxed
 * consistency model.
 */
class SharedGlobalMemory
{
  public:
    explicit SharedGlobalMemory(std::uint64_t capacity_bytes);

    /** Allocate @p bytes; fatal on exhaustion. */
    GlobalBuffer alloc(std::uint64_t bytes, const std::string &label);

    /** Free the most recent allocations down to @p buffer (stack-like). */
    void freeTo(const GlobalBuffer &buffer);

    std::uint64_t allocatedBytes() const { return _brk; }
    std::uint64_t capacity() const { return _capacity; }

    // --- Relaxed consistency -------------------------------------
    /** Record a write by @p agent to @p buffer (pending this epoch). */
    void recordWrite(Agent agent, const GlobalBuffer &buffer);

    /**
     * End a fixed-function / programmable kernel: the agent's pending
     * writes become globally visible (paper: "the local view ... is
     * only guaranteed to be consistent right after the kernel call").
     */
    void kernelEpochEnd(Agent agent);

    /** @return true if @p buffer's latest write is visible to all. */
    bool visible(const GlobalBuffer &buffer) const;

    /** Number of epoch flushes performed (sync accounting). */
    std::uint64_t epochFlushes() const { return _flushes; }

  private:
    std::uint64_t _capacity;
    std::uint64_t _brk = 0;
    std::uint64_t _next_id = 1;
    /** buffer id -> pending-writer agent (if not yet visible). */
    std::map<std::uint64_t, Agent> _pending;
    std::uint64_t _flushes = 0;
};

/** A global lock variable shared between CPU and PIMs. */
class GlobalLock
{
  public:
    /** Try to take the lock for @p agent. */
    bool tryAcquire(Agent agent);
    /** Release; panics when not held by @p agent. */
    void release(Agent agent);
    bool held() const { return _held; }
    std::uint64_t contentionCount() const { return _contention; }

  private:
    bool _held = false;
    Agent _owner = Agent::Host;
    std::uint64_t _contention = 0;
};

} // namespace hpim::cl

#endif // HPIM_CL_MEMORY_MODEL_HH
