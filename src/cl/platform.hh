/**
 * @file
 * Platform + command queues + events for the extended OpenCL model.
 *
 * The Platform owns the device list (host CPU, fixed-function PIM
 * device, programmable PIM device). CommandQueues record kernel
 * enqueues with dependences; finish() resolves a per-device serial
 * timeline using a caller-supplied timing function, filling events.
 * The full heterogeneous runtime (hpim::rt) supersedes this simple
 * in-order execution, but this layer is what user programs see.
 */

#ifndef HPIM_CL_PLATFORM_HH
#define HPIM_CL_PLATFORM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cl/device.hh"
#include "cl/kernel.hh"
#include "cl/memory_model.hh"

namespace hpim::cl {

/** Completion state of an enqueued command. */
enum class EventStatus { Queued, Running, Complete };

/** An OpenCL-style event. */
struct ClEvent
{
    std::uint64_t id = 0;
    EventStatus status = EventStatus::Queued;
    double startSec = 0.0;
    double endSec = 0.0;
};

/** Timing oracle: seconds a kernel takes on a device. */
using KernelTimingFn =
    std::function<double(const Kernel &, const ComputeDevice &)>;

class Platform;

/** A command queue attached to one device. */
class CommandQueue
{
  public:
    CommandQueue(Platform &platform, ComputeDevice &device);

    /**
     * Enqueue a kernel after the given events complete.
     * @return the completion event handle
     */
    std::shared_ptr<ClEvent>
    enqueue(const Kernel &kernel,
            std::vector<std::shared_ptr<ClEvent>> wait_list = {});

    /** Resolve all queued kernels to completion times. */
    void finish(const KernelTimingFn &timing);

    /** Device time after the last finished command. */
    double deviceTimeSec() const { return _device_time; }

    const ComputeDevice &device() const { return _device; }
    std::size_t pending() const { return _pending.size(); }

  private:
    struct PendingCmd
    {
        Kernel kernel;
        std::shared_ptr<ClEvent> event;
        std::vector<std::shared_ptr<ClEvent>> waits;
    };

    Platform &_platform;
    ComputeDevice &_device;
    std::vector<PendingCmd> _pending;
    double _device_time = 0.0;
};

/** The platform: host + heterogeneous accelerator devices. */
class Platform
{
  public:
    /**
     * @param global_memory_bytes capacity of the shared global memory
     */
    explicit Platform(std::uint64_t global_memory_bytes);

    /** Register a device; the platform owns it. */
    ComputeDevice &addDevice(const std::string &name, DeviceKind kind,
                             std::uint32_t compute_units,
                             std::uint32_t pes_per_unit);

    /** Create a command queue on @p device. */
    CommandQueue &createQueue(ComputeDevice &device);

    /** Devices of a given kind. */
    std::vector<ComputeDevice *> devicesByKind(DeviceKind kind);

    const std::vector<std::unique_ptr<ComputeDevice>> &devices() const
    { return _devices; }
    SharedGlobalMemory &globalMemory() { return _memory; }

    std::uint64_t nextEventId() { return _next_event_id++; }

  private:
    std::vector<std::unique_ptr<ComputeDevice>> _devices;
    std::vector<std::unique_ptr<CommandQueue>> _queues;
    SharedGlobalMemory _memory;
    std::uint64_t _next_event_id = 1;
};

} // namespace hpim::cl

#endif // HPIM_CL_PLATFORM_HH
