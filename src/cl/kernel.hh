/**
 * @file
 * Kernels and the four-binary compilation scheme (paper Fig. 4).
 *
 * From one OpenCL kernel source our "compiler" produces:
 *   #1 a CPU binary,
 *   #2 a fixed-function binary (only if the whole kernel is mul/add),
 *   #3 extracted small kernels loadable on fixed-function PIMs,
 *   #4 a programmable-PIM binary whose extracted regions are replaced
 *      by recursive kernel calls to #3.
 */

#ifndef HPIM_CL_KERNEL_HH
#define HPIM_CL_KERNEL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cl/device.hh"
#include "nn/op_cost.hh"
#include "nn/op_type.hh"

namespace hpim::cl {

/** A kernel: one NN training operation expressed for the platform. */
struct Kernel
{
    std::string name;
    hpim::nn::OpType opType = hpim::nn::OpType::MatMul;
    hpim::nn::CostStructure cost;
    hpim::nn::FixedParallelism parallelism;

    /** Offload class (derived from the op type). */
    hpim::nn::OffloadClass
    offloadClass() const
    {
        return hpim::nn::opTraits(opType).offloadClass;
    }
};

/** Compilation target of one binary. */
enum class BinaryTarget
{
    Cpu,          ///< #1
    FixedWhole,   ///< #2 -- whole kernel on fixed-function PIMs
    FixedExtract, ///< #3 -- extracted small kernels
    ProgrRecursive, ///< #4 -- progr kernel w/ recursive calls to #3
};

/** One produced binary. */
struct Binary
{
    BinaryTarget target;
    std::string symbol;
    /** Work carried by this binary (flops or special ops). */
    double workOps = 0.0;
    /** Recursive sub-kernel launches embedded (target #4 only). */
    std::uint32_t recursiveCalls = 0;
};

/** The binary set produced for a kernel. */
struct BinarySet
{
    std::vector<Binary> binaries;

    bool hasTarget(BinaryTarget target) const;
    const Binary &get(BinaryTarget target) const;
};

/**
 * Compile @p kernel into its binary set.
 *
 * FixedFunction-class kernels get #1, #2, #3, #4.
 * Recursive-class kernels get #1, #3, #4 (no #2: the kernel contains
 * instructions the fixed-function PIM cannot execute).
 * Everything else gets #1 and #4 (with no recursive calls).
 */
BinarySet compileKernel(const Kernel &kernel);

} // namespace hpim::cl

#endif // HPIM_CL_KERNEL_HH
