#include "cl/memory_model.hh"

#include "sim/logging.hh"

namespace hpim::cl {

SharedGlobalMemory::SharedGlobalMemory(std::uint64_t capacity_bytes)
    : _capacity(capacity_bytes)
{
    fatal_if(capacity_bytes == 0, "global memory capacity is zero");
}

GlobalBuffer
SharedGlobalMemory::alloc(std::uint64_t bytes, const std::string &label)
{
    fatal_if(_brk + bytes > _capacity, "global memory exhausted: ",
             _brk + bytes, " > ", _capacity, " allocating '", label, "'");
    GlobalBuffer buf;
    buf.id = _next_id++;
    buf.base = _brk;
    buf.bytes = bytes;
    buf.label = label;
    _brk += bytes;
    return buf;
}

void
SharedGlobalMemory::freeTo(const GlobalBuffer &buffer)
{
    panic_if(buffer.base > _brk, "freeTo target beyond the break");
    _brk = buffer.base;
    // Pending writes to freed buffers are dropped.
    for (auto it = _pending.begin(); it != _pending.end();) {
        if (it->first >= buffer.id)
            it = _pending.erase(it);
        else
            ++it;
    }
}

void
SharedGlobalMemory::recordWrite(Agent agent, const GlobalBuffer &buffer)
{
    _pending[buffer.id] = agent;
}

void
SharedGlobalMemory::kernelEpochEnd(Agent agent)
{
    for (auto it = _pending.begin(); it != _pending.end();) {
        if (it->second == agent) {
            it = _pending.erase(it);
        } else {
            ++it;
        }
    }
    ++_flushes;
}

bool
SharedGlobalMemory::visible(const GlobalBuffer &buffer) const
{
    return _pending.find(buffer.id) == _pending.end();
}

bool
GlobalLock::tryAcquire(Agent agent)
{
    if (_held) {
        ++_contention;
        return false;
    }
    _held = true;
    _owner = agent;
    return true;
}

void
GlobalLock::release(Agent agent)
{
    panic_if(!_held, "releasing an unheld lock");
    panic_if(_owner != agent, "lock released by a non-owner agent");
    _held = false;
}

} // namespace hpim::cl
