/**
 * @file
 * OpenCL-C kernel source generation.
 *
 * The paper's programming model asks the system programmer to write
 * each NN operation as OpenCL *once*; the toolchain then produces the
 * four binaries of Fig. 4. This module makes that concrete: it emits
 * (synthetic but well-formed) OpenCL-C source for
 *   - the full kernel of an op type (what the programmer writes),
 *   - the extracted fixed-function sub-kernels (binary #3's source),
 *   - the rewritten programmable-PIM kernel whose extracted regions
 *     are replaced by recursive launch intrinsics (binary #4's
 *     source, cf. the Conv2DBackpropFilter example of Fig. 6).
 */

#ifndef HPIM_CL_CODEGEN_HH
#define HPIM_CL_CODEGEN_HH

#include <string>
#include <vector>

#include "nn/op_type.hh"

namespace hpim::cl {

/** One generated source unit. */
struct KernelSource
{
    std::string name;   ///< kernel symbol
    std::string source; ///< OpenCL-C text
};

/** The source set mirroring the four-binary split. */
struct KernelSourceSet
{
    /** What the programmer writes: the whole operation. */
    KernelSource full;
    /** Extracted multiply/add regions (empty when none). */
    std::vector<KernelSource> fixedSubKernels;
    /**
     * The programmable-PIM kernel with extracted regions replaced by
     * hpim_launch_fixed(...) intrinsics (empty when nothing is
     * extracted -- the full kernel is used directly).
     */
    KernelSource progrKernel;
};

/** @return generated OpenCL-C source for @p type. */
KernelSourceSet generateKernelSources(hpim::nn::OpType type);

/** @return the extended-OpenCL header every kernel includes
 *  (launch intrinsics, PIM sync primitives; paper Tables II/III). */
std::string extensionHeader();

/**
 * Very small structural validator for generated source: balanced
 * braces/parens, a __kernel entry, and no unresolved placeholders.
 */
bool validateKernelSource(const std::string &source);

} // namespace hpim::cl

#endif // HPIM_CL_CODEGEN_HH
