#include "cl/device.hh"

#include "sim/logging.hh"

namespace hpim::cl {

using hpim::nn::OffloadClass;

std::string
deviceKindName(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::HostCpu:  return "host-cpu";
      case DeviceKind::FixedPim: return "fixed-pim";
      case DeviceKind::ProgrPim: return "progr-pim";
    }
    panic("unknown device kind");
}

bool
ComputeDevice::supports(OffloadClass cls) const
{
    switch (_kind) {
      case DeviceKind::HostCpu:
        return true;
      case DeviceKind::ProgrPim:
        return true;
      case DeviceKind::FixedPim:
        return cls == OffloadClass::FixedFunction;
    }
    panic("unknown device kind");
}

} // namespace hpim::cl
