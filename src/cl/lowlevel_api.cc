#include "cl/lowlevel_api.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hpim::cl {

using hpim::mem::Addr;

std::vector<std::uint32_t>
PimApi::dataBanks(Addr base, std::uint64_t bytes) const
{
    std::vector<std::uint32_t> banks;
    // Sample the range at row granularity; vault == bank slice.
    std::uint64_t row_bytes = _mapping.rowBytes();
    std::uint64_t steps =
        std::min<std::uint64_t>((bytes + row_bytes - 1) / row_bytes, 256);
    steps = std::max<std::uint64_t>(steps, 1);
    for (std::uint64_t i = 0; i < steps; ++i) {
        Addr probe = base + i * row_bytes;
        std::uint32_t vault = _mapping.decompose(probe).vault;
        if (std::find(banks.begin(), banks.end(), vault) == banks.end())
            banks.push_back(vault);
    }
    std::sort(banks.begin(), banks.end());
    return banks;
}

PimOpHandle
PimApi::offloadFixed(Addr data_base, std::uint64_t data_bytes,
                     std::uint32_t units_needed)
{
    fatal_if(units_needed == 0, "offloading zero units");
    if (_regs.totalFreeUnits() < units_needed)
        return 0;

    LiveOp op;
    op.location.dataBanks = dataBanks(data_base, data_bytes);

    std::uint32_t remaining = units_needed;
    // First pass: banks that hold the data (compute near data).
    auto try_bank = [&](std::uint32_t bank) {
        if (remaining == 0 || bank >= _regs.banks())
            return;
        std::uint32_t take = std::min(remaining, _regs.freeUnits(bank));
        if (take > 0 && _regs.acquire(bank, take)) {
            op.grants.emplace_back(bank, take);
            op.location.fixedBanks.push_back(bank);
            remaining -= take;
        }
    };
    for (std::uint32_t bank : op.location.dataBanks)
        try_bank(bank);
    // Second pass: spill to any bank (buffering mechanisms).
    for (std::uint32_t bank = 0; bank < _regs.banks(); ++bank)
        try_bank(bank);

    if (remaining > 0) {
        // Could not gather enough units; roll back.
        for (auto &[bank, units] : op.grants)
            _regs.release(bank, units);
        return 0;
    }

    PimOpHandle handle = _next_handle++;
    _live.emplace(handle, std::move(op));
    return handle;
}

PimOpHandle
PimApi::offloadProgr()
{
    if (_regs.progrBusy())
        return 0;
    _regs.setProgrBusy(true);
    LiveOp op;
    op.location.onProgrPim = true;
    PimOpHandle handle = _next_handle++;
    _live.emplace(handle, std::move(op));
    return handle;
}

void
PimApi::complete(PimOpHandle handle)
{
    auto it = _live.find(handle);
    panic_if(it == _live.end(), "completing unknown PIM op ", handle);
    for (auto &[bank, units] : it->second.grants)
        _regs.release(bank, units);
    if (it->second.location.onProgrPim)
        _regs.setProgrBusy(false);
    _live.erase(it);
}

bool
PimApi::queryComplete(PimOpHandle handle) const
{
    return _live.find(handle) == _live.end();
}

PimLocation
PimApi::queryLocation(PimOpHandle handle) const
{
    auto it = _live.find(handle);
    fatal_if(it == _live.end(), "querying location of completed op ",
             handle);
    return it->second.location;
}

} // namespace hpim::cl
