#include "cl/platform.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hpim::cl {

CommandQueue::CommandQueue(Platform &platform, ComputeDevice &device)
    : _platform(platform), _device(device)
{
}

std::shared_ptr<ClEvent>
CommandQueue::enqueue(const Kernel &kernel,
                      std::vector<std::shared_ptr<ClEvent>> wait_list)
{
    fatal_if(!_device.supports(kernel.offloadClass()),
             "device '", _device.name(), "' cannot run kernel '",
             kernel.name, "' of class ",
             static_cast<int>(kernel.offloadClass()));
    auto event = std::make_shared<ClEvent>();
    event->id = _platform.nextEventId();
    _pending.push_back(PendingCmd{kernel, event, std::move(wait_list)});
    return event;
}

void
CommandQueue::finish(const KernelTimingFn &timing)
{
    // In-order queue: each command starts when the device is free and
    // all its wait-list events have completed.
    for (PendingCmd &cmd : _pending) {
        double ready = _device_time;
        for (const auto &wait : cmd.waits) {
            panic_if(wait->status != EventStatus::Complete,
                     "wait-list event ", wait->id,
                     " not complete; cross-queue finish ordering bug");
            ready = std::max(ready, wait->endSec);
        }
        double dur = timing(cmd.kernel, _device);
        cmd.event->status = EventStatus::Complete;
        cmd.event->startSec = ready;
        cmd.event->endSec = ready + dur;
        _device_time = cmd.event->endSec;
    }
    _pending.clear();
}

Platform::Platform(std::uint64_t global_memory_bytes)
    : _memory(global_memory_bytes)
{
}

ComputeDevice &
Platform::addDevice(const std::string &name, DeviceKind kind,
                    std::uint32_t compute_units,
                    std::uint32_t pes_per_unit)
{
    _devices.push_back(std::make_unique<ComputeDevice>(
        name, kind, compute_units, pes_per_unit));
    return *_devices.back();
}

CommandQueue &
Platform::createQueue(ComputeDevice &device)
{
    _queues.push_back(std::make_unique<CommandQueue>(*this, device));
    return *_queues.back();
}

std::vector<ComputeDevice *>
Platform::devicesByKind(DeviceKind kind)
{
    std::vector<ComputeDevice *> out;
    for (auto &dev : _devices) {
        if (dev->kind() == kind)
            out.push_back(dev.get());
    }
    return out;
}

} // namespace hpim::cl
