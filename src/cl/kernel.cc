#include "cl/kernel.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace hpim::cl {

using hpim::nn::OffloadClass;

bool
BinarySet::hasTarget(BinaryTarget target) const
{
    return std::any_of(binaries.begin(), binaries.end(),
                       [target](const Binary &b) {
                           return b.target == target;
                       });
}

const Binary &
BinarySet::get(BinaryTarget target) const
{
    for (const Binary &b : binaries) {
        if (b.target == target)
            return b;
    }
    fatal("binary set lacks the requested target");
}

BinarySet
compileKernel(const Kernel &kernel)
{
    BinarySet set;
    const double fixed_work = kernel.cost.flops();
    const double special_work = kernel.cost.specials;

    // #1: the CPU binary always exists.
    set.binaries.push_back(Binary{BinaryTarget::Cpu,
                                  kernel.name + ".cpu",
                                  fixed_work + special_work, 0});

    switch (kernel.offloadClass()) {
      case OffloadClass::FixedFunction: {
        set.binaries.push_back(Binary{BinaryTarget::FixedWhole,
                                      kernel.name + ".fixed",
                                      fixed_work, 0});
        set.binaries.push_back(Binary{BinaryTarget::FixedExtract,
                                      kernel.name + ".fixed_sub",
                                      fixed_work, 0});
        set.binaries.push_back(Binary{BinaryTarget::ProgrRecursive,
                                      kernel.name + ".progr", 0.0, 1});
        break;
      }
      case OffloadClass::Recursive: {
        // The extractable portion is the mul/add core; phases that
        // cannot move (paper Fig. 6 phases 1 & 2) stay in #4.
        set.binaries.push_back(Binary{BinaryTarget::FixedExtract,
                                      kernel.name + ".fixed_sub",
                                      fixed_work, 0});
        // One recursive call per extracted region; model one region
        // per 2^20 lanes, at least one.
        auto calls = static_cast<std::uint32_t>(std::max(
            1.0, std::ceil(kernel.parallelism.lanes / 1048576.0)));
        set.binaries.push_back(Binary{BinaryTarget::ProgrRecursive,
                                      kernel.name + ".progr",
                                      special_work, calls});
        break;
      }
      case OffloadClass::ProgrammableOnly:
      case OffloadClass::DataMovement: {
        set.binaries.push_back(Binary{BinaryTarget::ProgrRecursive,
                                      kernel.name + ".progr",
                                      fixed_work + special_work, 0});
        break;
      }
    }
    return set;
}

} // namespace hpim::cl
