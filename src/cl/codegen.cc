#include "cl/codegen.hh"

#include <sstream>

#include "sim/logging.hh"

namespace hpim::cl {

using hpim::nn::OffloadClass;
using hpim::nn::opName;
using hpim::nn::OpType;
using hpim::nn::opTraits;

namespace {

std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return out;
}

/** The multiply/add inner loop every extractable region shares. */
std::string
macRegion(const std::string &acc, const std::string &a,
          const std::string &b, const std::string &bound)
{
    std::ostringstream os;
    os << "    float " << acc << " = 0.0f;\n"
       << "    for (int r = 0; r < " << bound << "; ++r) {\n"
       << "        " << acc << " += " << a << "[r] * " << b
       << "[r];\n"
       << "    }\n";
    return os.str();
}

KernelSource
fullKernel(OpType type)
{
    std::string fn = sanitize(opName(type));
    std::ostringstream os;
    os << "#include \"hpim_cl_ext.h\"\n\n"
       << "__kernel void " << fn << "(\n"
       << "    __global const float *in0,\n"
       << "    __global const float *in1,\n"
       << "    __global float *out,\n"
       << "    const int n, const int reduction)\n"
       << "{\n"
       << "    const int gid = get_global_id(0);\n"
       << "    if (gid >= n) return;\n";

    switch (opTraits(type).offloadClass) {
      case OffloadClass::FixedFunction:
        os << macRegion("acc", "(in0 + gid * reduction)",
                        "(in1 + gid * reduction)", "reduction")
           << "    out[gid] = acc;\n";
        break;
      case OffloadClass::Recursive:
        os << "    /* phase 1: index setup / control (stays on the "
              "programmable device) */\n"
           << "    int base = hpim_region_base(gid, reduction);\n"
           << macRegion("acc", "(in0 + base)", "(in1 + base)",
                        "reduction")
           << "    /* phase 2: accumulation control */\n"
           << "    out[gid] = hpim_accumulate(out[gid], acc);\n";
        break;
      case OffloadClass::ProgrammableOnly:
        os << "    float v = in0[gid];\n"
           << "    out[gid] = v > 0.0f ? v : hpim_special(v);\n";
        break;
      case OffloadClass::DataMovement:
        os << "    out[gid] = in0[hpim_gather_index(gid)];\n";
        break;
    }
    os << "}\n";
    return KernelSource{fn, os.str()};
}

KernelSource
fixedSubKernel(OpType type)
{
    std::string fn = sanitize(opName(type)) + "_fixed_sub";
    std::ostringstream os;
    os << "#include \"hpim_cl_ext.h\"\n\n"
       << "/* Loadable on the fixed-function PIMs: pure "
          "multiply/add reduction tree. */\n"
       << "__kernel void " << fn << "(\n"
       << "    __global const float *a,\n"
       << "    __global const float *b,\n"
       << "    __global float *partial,\n"
       << "    const int reduction)\n"
       << "{\n"
       << "    const int lane = get_global_id(0);\n"
       << macRegion("acc", "(a + lane * reduction)",
                    "(b + lane * reduction)", "reduction")
       << "    partial[lane] = acc;\n"
       << "}\n";
    return KernelSource{fn, os.str()};
}

KernelSource
progrKernel(OpType type)
{
    std::string fn = sanitize(opName(type)) + "_progr";
    std::ostringstream os;
    os << "#include \"hpim_cl_ext.h\"\n\n"
       << "/* Runs on the programmable PIM; the extracted region is\n"
       << " * replaced by a recursive launch onto the fixed-function\n"
       << " * PIMs (paper Fig. 6). */\n"
       << "__kernel void " << fn << "(\n"
       << "    __global const float *in0,\n"
       << "    __global const float *in1,\n"
       << "    __global float *out,\n"
       << "    const int n, const int reduction)\n"
       << "{\n"
       << "    const int gid = get_global_id(0);\n"
       << "    if (gid >= n) return;\n"
       << "    /* phase 1 */\n"
       << "    int base = hpim_region_base(gid, reduction);\n"
       << "    /* extracted region -> recursive kernel call */\n"
       << "    hpim_launch_fixed(" << sanitize(opName(type))
       << "_fixed_sub, in0 + base, in1 + base, out + gid, "
          "reduction);\n"
       << "    hpim_wait_fixed();\n"
       << "    /* phase 2 */\n"
       << "    out[gid] = hpim_accumulate(out[gid], 0.0f);\n"
       << "}\n";
    return KernelSource{fn, os.str()};
}

} // namespace

std::string
extensionHeader()
{
    return
        "/* hpim_cl_ext.h -- extended-OpenCL intrinsics for the\n"
        " * heterogeneous PIM platform (paper Tables II & III). */\n"
        "#pragma once\n"
        "int   hpim_region_base(int gid, int reduction);\n"
        "float hpim_accumulate(float current, float value);\n"
        "float hpim_special(float value);\n"
        "int   hpim_gather_index(int gid);\n"
        "/* Recursive kernel invocation: accelerator -> accelerator "
        "(execution model extension). */\n"
        "void  hpim_launch_fixed(/* kernel symbol + args */ ...);\n"
        "void  hpim_wait_fixed(void);\n"
        "/* Explicit synchronization across PIMs and CPU (memory "
        "model extension). */\n"
        "void  hpim_barrier_all(void);\n"
        "void  hpim_lock_global(__global int *lock_var);\n"
        "void  hpim_unlock_global(__global int *lock_var);\n";
}

KernelSourceSet
generateKernelSources(OpType type)
{
    KernelSourceSet set;
    set.full = fullKernel(type);
    switch (opTraits(type).offloadClass) {
      case OffloadClass::FixedFunction:
        // The whole kernel is the extractable region.
        set.fixedSubKernels.push_back(fixedSubKernel(type));
        set.progrKernel = progrKernel(type);
        break;
      case OffloadClass::Recursive:
        set.fixedSubKernels.push_back(fixedSubKernel(type));
        set.progrKernel = progrKernel(type);
        break;
      case OffloadClass::ProgrammableOnly:
      case OffloadClass::DataMovement:
        // Nothing to extract: the full kernel is the progr binary.
        set.progrKernel = set.full;
        break;
    }
    return set;
}

bool
validateKernelSource(const std::string &source)
{
    int braces = 0, parens = 0;
    for (char c : source) {
        switch (c) {
          case '{': ++braces; break;
          case '}': --braces; break;
          case '(': ++parens; break;
          case ')': --parens; break;
          default: break;
        }
        if (braces < 0 || parens < 0)
            return false;
    }
    if (braces != 0 || parens != 0)
        return false;
    if (source.find("__kernel") == std::string::npos)
        return false;
    if (source.find("$") != std::string::npos)
        return false;
    return true;
}

} // namespace hpim::cl
