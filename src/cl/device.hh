/**
 * @file
 * The platform model's compute devices (paper Fig. 5b).
 *
 * Fixed-function PIMs: every unit is a PE, a bank of units is a
 * compute unit, all banks together form one compute device.
 * The programmable PIM is its own compute device; each ARM core a PE.
 * The host CPU is the platform host and can also execute kernels.
 */

#ifndef HPIM_CL_DEVICE_HH
#define HPIM_CL_DEVICE_HH

#include <cstdint>
#include <string>

#include "nn/op_type.hh"
#include "sim/named.hh"

namespace hpim::cl {

/** Kinds of compute devices in the extended platform model. */
enum class DeviceKind
{
    HostCpu,
    FixedPim,
    ProgrPim,
};

/** @return printable device-kind name. */
std::string deviceKindName(DeviceKind kind);

/** A compute device in the platform model. */
class ComputeDevice : public hpim::sim::Named
{
  public:
    /**
     * @param name device name
     * @param kind device kind
     * @param compute_units number of compute units (banks / core
     *        clusters)
     * @param pes_per_unit processing elements per compute unit
     */
    ComputeDevice(const std::string &name, DeviceKind kind,
                  std::uint32_t compute_units,
                  std::uint32_t pes_per_unit)
        : Named(name), _kind(kind), _compute_units(compute_units),
          _pes_per_unit(pes_per_unit)
    {}

    DeviceKind kind() const { return _kind; }
    std::uint32_t computeUnits() const { return _compute_units; }
    std::uint32_t pesPerUnit() const { return _pes_per_unit; }
    std::uint32_t totalPes() const
    { return _compute_units * _pes_per_unit; }

    /**
     * Capability check: can a kernel for op class @p cls run here?
     * (Execution model: "If the task includes instructions that cannot
     * be executed on the fixed-function PIM, then the task will not be
     * scheduled ... to run on the fixed-function PIM.")
     */
    bool supports(hpim::nn::OffloadClass cls) const;

  private:
    DeviceKind _kind;
    std::uint32_t _compute_units;
    std::uint32_t _pes_per_unit;
};

} // namespace hpim::cl

#endif // HPIM_CL_DEVICE_HH
