#include "obs/trace.hh"

#include <algorithm>
#include <fstream>

#include "harness/json_writer.hh"
#include "sim/logging.hh"
#include "sim/memo_cache.hh"

namespace hpim::obs {

namespace {

/**
 * Thread-local cache of "my buffer inside session generation G".
 * A generation counter rather than the session pointer keys the
 * cache so a new session at a recycled address cannot alias a stale
 * buffer pointer.
 */
struct ThreadSlot
{
    std::uint64_t generation = 0;
    TraceSession::Buffer *buffer = nullptr;
};

thread_local ThreadSlot t_slot;
thread_local std::uint32_t t_scope = 0;

std::atomic<std::uint64_t> s_next_generation{1};

} // namespace

std::atomic<TraceSession *> TraceSession::s_current{nullptr};

TraceSession::TraceSession()
    : _generation(s_next_generation.fetch_add(1, std::memory_order_relaxed))
{
}

TraceSession::~TraceSession()
{
    detach();
}

void
TraceSession::attach()
{
    TraceSession *expected = nullptr;
    fatal_if(!s_current.compare_exchange_strong(expected, this,
                                                std::memory_order_acq_rel),
             "obs: a TraceSession is already attached");
    _attached = true;
    // A memo-cache hit would skip a simulation whose events this
    // session expects to record; suspend reuse while attached.
    hpim::sim::MemoCache::suspend();
}

void
TraceSession::detach()
{
    if (!_attached)
        return;
    TraceSession *expected = this;
    s_current.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel);
    _attached = false;
    hpim::sim::MemoCache::resume();
}

TraceSession::Buffer &
TraceSession::threadBuffer()
{
    if (t_slot.generation == _generation)
        return *t_slot.buffer;
    std::lock_guard<std::mutex> lock(_mutex);
    _buffers.push_back(std::make_unique<Buffer>());
    t_slot.generation = _generation;
    t_slot.buffer = _buffers.back().get();
    return *t_slot.buffer;
}

TrackId
TraceSession::track(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (std::size_t i = 0; i < _tracks.size(); ++i) {
        if (_tracks[i] == name)
            return static_cast<TrackId>(i);
    }
    _tracks.push_back(name);
    return static_cast<TrackId>(_tracks.size() - 1);
}

void
TraceSession::record(TraceEvent event)
{
    Buffer &buf = threadBuffer();
    event.scope = t_scope;
    event.seq = buf.nextSeq++;
    buf.events.push_back(std::move(event));
}

void
TraceSession::span(TrackId track, std::string name, double ts_sec,
                   double dur_sec, std::vector<TraceArg> args)
{
    TraceEvent event;
    event.kind = EventKind::Span;
    event.track = track;
    event.tsSec = ts_sec;
    event.durSec = dur_sec;
    event.name = std::move(name);
    event.args = std::move(args);
    record(std::move(event));
}

void
TraceSession::instant(TrackId track, std::string name, double ts_sec,
                      std::vector<TraceArg> args)
{
    TraceEvent event;
    event.kind = EventKind::Instant;
    event.track = track;
    event.tsSec = ts_sec;
    event.name = std::move(name);
    event.args = std::move(args);
    record(std::move(event));
}

void
TraceSession::counter(TrackId track, std::string name, double ts_sec,
                      double value)
{
    TraceEvent event;
    event.kind = EventKind::Counter;
    event.track = track;
    event.tsSec = ts_sec;
    event.value = value;
    event.name = std::move(name);
    record(std::move(event));
}

TraceSession::Scope::Scope(std::uint32_t scope) : _saved(t_scope)
{
    t_scope = scope;
}

TraceSession::Scope::~Scope()
{
    t_scope = _saved;
}

std::uint32_t
TraceSession::currentScope()
{
    return t_scope;
}

std::vector<TraceEvent>
TraceSession::sortedEvents() const
{
    std::vector<TraceEvent> merged;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        std::size_t total = 0;
        for (const auto &buf : _buffers)
            total += buf->events.size();
        merged.reserve(total);
        for (const auto &buf : _buffers)
            merged.insert(merged.end(), buf->events.begin(),
                          buf->events.end());
    }
    // (scope, seq) is a total order: a scope runs on exactly one
    // thread, so within a scope every event came from one buffer and
    // seq reproduces program order. Across scopes the ordering is the
    // sweep-point index, which is seed-determined.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.scope != b.scope)
                             return a.scope < b.scope;
                         return a.seq < b.seq;
                     });
    return merged;
}

std::size_t
TraceSession::eventCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::size_t total = 0;
    for (const auto &buf : _buffers)
        total += buf->events.size();
    return total;
}

std::vector<std::string>
TraceSession::trackNames() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _tracks;
}

namespace {

void
writeArgValue(harness::json::Writer &w, const TraceArg &arg)
{
    w.key(arg.key);
    if (std::holds_alternative<std::int64_t>(arg.value))
        w.value(std::get<std::int64_t>(arg.value));
    else if (std::holds_alternative<double>(arg.value))
        w.value(std::get<double>(arg.value));
    else
        w.value(std::get<std::string>(arg.value));
}

/** Chrome trace events use microsecond timestamps. */
double
toMicros(double seconds)
{
    return seconds * 1e6;
}

} // namespace

void
TraceSession::exportChromeTrace(std::ostream &os) const
{
    const std::vector<TraceEvent> events = sortedEvents();
    const std::vector<std::string> tracks = trackNames();

    // Canonical track numbering. Intern order is first-come across
    // worker threads, hence racy under --jobs > 1; the export remaps
    // every track to its rank in name-sorted order so the emitted tids
    // are a pure function of the track-name set.
    std::vector<std::size_t> order(tracks.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&tracks](std::size_t a, std::size_t b) {
                  return tracks[a] < tracks[b];
              });
    std::vector<TrackId> remap(tracks.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank)
        remap[order[rank]] = static_cast<TrackId>(rank);

    // Which scopes appear? Metadata must name every (pid, tid) pair
    // actually used so Perfetto labels the rows.
    std::vector<std::uint32_t> scopes;
    for (const auto &event : events) {
        if (scopes.empty() || scopes.back() != event.scope)
            scopes.push_back(event.scope);
    }
    // events are scope-sorted, so `scopes` is already unique+sorted.

    harness::json::Writer w(os);
    w.beginObject();
    w.key("traceEvents").beginArray();

    for (std::uint32_t scope : scopes) {
        std::string pname =
            scope == 0 ? std::string("run")
                       : "point " + std::to_string(scope - 1);
        w.beginObject();
        w.field("name", "process_name");
        w.field("ph", "M");
        w.field("pid", scope);
        w.field("tid", std::uint32_t{0});
        w.key("args").beginObject();
        w.field("name", pname);
        w.endObject();
        w.endObject();
        for (std::size_t rank = 0; rank < order.size(); ++rank) {
            w.beginObject();
            w.field("name", "thread_name");
            w.field("ph", "M");
            w.field("pid", scope);
            w.field("tid", static_cast<std::uint32_t>(rank));
            w.key("args").beginObject();
            w.field("name", tracks[order[rank]]);
            w.endObject();
            w.endObject();
            w.beginObject();
            w.field("name", "thread_sort_index");
            w.field("ph", "M");
            w.field("pid", scope);
            w.field("tid", static_cast<std::uint32_t>(rank));
            w.key("args").beginObject();
            w.field("sort_index", static_cast<std::uint64_t>(rank));
            w.endObject();
            w.endObject();
        }
    }

    for (const auto &event : events) {
        w.beginObject();
        w.field("name", event.name);
        switch (event.kind) {
          case EventKind::Span:
            w.field("ph", "X");
            break;
          case EventKind::Instant:
            w.field("ph", "i");
            w.field("s", "t");
            break;
          case EventKind::Counter:
            w.field("ph", "C");
            break;
        }
        w.field("pid", event.scope);
        w.field("tid", remap[event.track]);
        w.field("ts", toMicros(event.tsSec));
        if (event.kind == EventKind::Span)
            w.field("dur", toMicros(event.durSec));
        if (event.kind == EventKind::Counter) {
            w.key("args").beginObject();
            w.field("value", event.value);
            w.endObject();
        } else if (!event.args.empty()) {
            w.key("args").beginObject();
            for (const auto &arg : event.args)
                writeArgValue(w, arg);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << '\n';
}

void
TraceSession::exportChromeTrace(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw TraceExportError("cannot open trace file '" + path
                               + "'");
    exportChromeTrace(out);
    out.flush();
    if (!out)
        throw TraceExportError("failed writing trace file '" + path
                               + "'");
}

} // namespace hpim::obs
