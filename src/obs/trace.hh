/**
 * @file
 * Structured tracing: a timeline of what every simulated component
 * was doing, exportable as Chrome trace-event JSON (loadable in
 * Perfetto / chrome://tracing).
 *
 * A TraceSession records typed events -- spans (an interval of work
 * on one track), instants (a point occurrence: a fault, a retry, a
 * DRAM row activation) and counters (a sampled value over time, e.g.
 * allocatable fixed-pool units) -- into per-thread buffers, so
 * recording never takes a lock on the hot path once a thread's
 * buffer exists.
 *
 * Instrumented components (rt::Executor, mem::VaultController,
 * harness::SweepRunner, ...) look up the process-global session via
 * TraceSession::current(); when none is attached the lookup is one
 * relaxed atomic load and the instrumentation does nothing, so runs
 * with tracing off are bit-identical to an uninstrumented build.
 *
 * Determinism contract: exported traces are byte-identical for a
 * fixed seed regardless of the sweep worker count. Two mechanisms
 * deliver this:
 *  - every event carries a *scope* (0 = the main run; sweep point i
 *    records under scope i+1, set by TraceSession::Scope in the
 *    worker task) and a per-buffer sequence number. A scope only ever
 *    executes on one thread, so sorting events by (scope, seq)
 *    reproduces each scope's program order independent of which
 *    worker ran it or when;
 *  - timestamps are *simulated* time (or a synthetic per-scope
 *    clock for host-side activity such as sweep bookkeeping), never
 *    wall-clock, so reruns produce identical values.
 * tests/test_obs_determinism.cpp enforces the contract.
 */

#ifndef HPIM_OBS_TRACE_HH
#define HPIM_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace hpim::obs {

/** A trace file that could not be opened or written. Typed (instead
 *  of fatal) so the harness and serve layers can decide the policy:
 *  a lost trace artifact warns, it never kills the run that produced
 *  the actual results. */
struct TraceExportError : std::runtime_error
{
    explicit TraceExportError(const std::string &message)
        : std::runtime_error("obs: " + message)
    {
    }
};

/** Timeline row an event belongs to (a device, a vault, ...). */
using TrackId = std::uint32_t;

/** Event flavours; mirrors the Chrome trace-event phases used. */
enum class EventKind : std::uint8_t
{
    Span,    ///< interval of work ("X" complete event)
    Instant, ///< point occurrence ("i" instant event)
    Counter, ///< sampled value ("C" counter event)
};

/** One typed key=value annotation attached to an event. */
struct TraceArg
{
    std::string key;
    std::variant<std::int64_t, double, std::string> value;
};

/** One recorded event. Timestamps are seconds of simulated time. */
struct TraceEvent
{
    EventKind kind = EventKind::Instant;
    TrackId track = 0;
    std::uint32_t scope = 0;  ///< 0 = main run; sweep point i -> i+1
    std::uint64_t seq = 0;    ///< per-buffer record order
    double tsSec = 0.0;
    double durSec = 0.0;      ///< spans only
    double value = 0.0;       ///< counters only
    std::string name;
    std::vector<TraceArg> args;
};

/** The recording session. One may be attached process-wide. */
class TraceSession
{
  public:
    TraceSession();
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /**
     * Install this session as the process-global one picked up by
     * instrumented components. fatal() if another is attached.
     */
    void attach();

    /** Uninstall; recorded events stay readable. Idempotent. */
    void detach();

    /** @return the attached session, or nullptr (one relaxed load). */
    static TraceSession *
    current()
    {
        return s_current.load(std::memory_order_acquire);
    }

    /**
     * Intern a track by name ("cpu", "vault 3", ...). Tracks are
     * shared across scopes. In-memory ids are assigned in first-
     * intern order, which is racy across sweep workers -- the export
     * remaps them to name-sorted order, so on-disk tids never depend
     * on intern timing.
     */
    TrackId track(const std::string &name);

    /** Record a completed interval [ts, ts+dur] on @p track. */
    void span(TrackId track, std::string name, double ts_sec,
              double dur_sec, std::vector<TraceArg> args = {});

    /** Record a point occurrence. */
    void instant(TrackId track, std::string name, double ts_sec,
                 std::vector<TraceArg> args = {});

    /** Record a sampled value (rendered as a counter track). */
    void counter(TrackId track, std::string name, double ts_sec,
                 double value);

    /**
     * Scope guard: events recorded on this thread while the guard
     * lives carry @p scope. Sweep workers wrap each point in one so
     * the point's events sort together whatever thread ran it.
     */
    class Scope
    {
      public:
        explicit Scope(std::uint32_t scope);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        std::uint32_t _saved;
    };

    /** @return the calling thread's current scope id. */
    static std::uint32_t currentScope();

    /** All events merged across threads, in (scope, seq) order. */
    std::vector<TraceEvent> sortedEvents() const;

    /** Number of events recorded so far (all threads). */
    std::size_t eventCount() const;

    /** Track names indexed by TrackId. */
    std::vector<std::string> trackNames() const;

    /**
     * Write the whole session as Chrome trace-event JSON: metadata
     * names each scope (pid) and track (tid), then every event in
     * deterministic (scope, seq) order. Strictly parseable by
     * harness::json::parse and loadable in Perfetto.
     */
    void exportChromeTrace(std::ostream &os) const;

    /** exportChromeTrace to @p path; throws TraceExportError on an
     *  unopenable path or a failed write. */
    void exportChromeTrace(const std::string &path) const;

    /** One thread's event storage (public for the TLS cache). */
    struct Buffer
    {
        std::vector<TraceEvent> events;
        std::uint64_t nextSeq = 0;
    };

  private:
    Buffer &threadBuffer();
    void record(TraceEvent event);

    static std::atomic<TraceSession *> s_current;

    const std::uint64_t _generation; ///< keys thread-local buffer cache
    mutable std::mutex _mutex;
    std::vector<std::unique_ptr<Buffer>> _buffers;
    std::vector<std::string> _tracks;
    bool _attached = false;
};

} // namespace hpim::obs

#endif // HPIM_OBS_TRACE_HH
