#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"
#include "sim/memo_cache.hh"

namespace hpim::obs {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    panic("obs: bad MetricKind ", static_cast<int>(kind));
}

MetricKind
metricKindFromName(const std::string &name)
{
    if (name == "counter")
        return MetricKind::Counter;
    if (name == "gauge")
        return MetricKind::Gauge;
    if (name == "histogram")
        return MetricKind::Histogram;
    fatal("obs: unknown metric kind '", name, "'");
}

bool
MetricSample::operator==(const MetricSample &other) const
{
    return name == other.name && kind == other.kind
        && count == other.count && value == other.value
        && sum == other.sum && min == other.min && max == other.max
        && buckets == other.buckets;
}

namespace {

/** Lock-free fetch_add for atomic<double> (no hardware op pre-C++20
 *  libstdc++ support everywhere, so CAS-loop it). */
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double seen = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(seen, seen + delta,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMin(std::atomic<double> &target, double candidate)
{
    double seen = target.load(std::memory_order_relaxed);
    while (candidate < seen
           && !target.compare_exchange_weak(seen, candidate,
                                            std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &target, double candidate)
{
    double seen = target.load(std::memory_order_relaxed);
    while (candidate > seen
           && !target.compare_exchange_weak(seen, candidate,
                                            std::memory_order_relaxed)) {
    }
}

/** @return the bucket index for @p value; see metrics.hh binning. */
std::size_t
bucketIndex(double value)
{
    if (value == 0.0 || !std::isfinite(value))
        return 0; // 0, inf and nan all land in the lowest bucket
    int exp = std::ilogb(std::fabs(value));
    exp = std::clamp(exp, -64, 63);
    return static_cast<std::size_t>(exp + 64);
}

} // namespace

Histogram::Histogram()
    : _min(std::numeric_limits<double>::infinity()),
      _max(-std::numeric_limits<double>::infinity())
{
    for (auto &bucket : _buckets)
        bucket.store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double value)
{
    _buckets[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(_sum, value);
    atomicMin(_min, value);
    atomicMax(_max, value);
}

std::uint64_t
Histogram::count() const
{
    return _count.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return _sum.load(std::memory_order_relaxed);
}

double
Histogram::min() const
{
    return _min.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return _max.load(std::memory_order_relaxed);
}

std::vector<HistogramBucket>
Histogram::buckets() const
{
    std::vector<HistogramBucket> out;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        std::uint64_t n = _buckets[i].load(std::memory_order_relaxed);
        if (n != 0)
            out.push_back({static_cast<std::uint32_t>(i), n});
    }
    return out;
}

struct MetricsRegistry::Entry
{
    std::string name;
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;

    Entry(std::string n, MetricKind k) : name(std::move(n)), kind(k) {}
};

std::atomic<MetricsRegistry *> MetricsRegistry::s_current{nullptr};

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry::~MetricsRegistry()
{
    detach();
}

void
MetricsRegistry::attach()
{
    MetricsRegistry *expected = nullptr;
    fatal_if(!s_current.compare_exchange_strong(expected, this,
                                                std::memory_order_acq_rel),
             "obs: a MetricsRegistry is already attached");
    _attached = true;
    // Cached sub-simulations would skip the counters this registry
    // expects to aggregate; suspend reuse while attached.
    hpim::sim::MemoCache::suspend();
}

void
MetricsRegistry::detach()
{
    if (!_attached)
        return;
    MetricsRegistry *expected = this;
    s_current.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel);
    _attached = false;
    hpim::sim::MemoCache::resume();
}

MetricsRegistry::Entry &
MetricsRegistry::lookup(const std::string &name, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &entry : _entries) {
        if (entry->name != name)
            continue;
        fatal_if(entry->kind != kind, "obs: metric '", name,
                 "' registered as ", metricKindName(entry->kind),
                 ", requested as ", metricKindName(kind));
        return *entry;
    }
    _entries.push_back(std::make_unique<Entry>(name, kind));
    return *_entries.back();
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return lookup(name, MetricKind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return lookup(name, MetricKind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return lookup(name, MetricKind::Histogram).histogram;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::vector<MetricSample> out;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        out.reserve(_entries.size());
        for (const auto &entry : _entries) {
            MetricSample sample;
            sample.name = entry->name;
            sample.kind = entry->kind;
            switch (entry->kind) {
              case MetricKind::Counter:
                sample.count = entry->counter.value();
                break;
              case MetricKind::Gauge:
                sample.value = entry->gauge.value();
                break;
              case MetricKind::Histogram:
                sample.count = entry->histogram.count();
                sample.sum = entry->histogram.sum();
                if (sample.count > 0) {
                    sample.min = entry->histogram.min();
                    sample.max = entry->histogram.max();
                }
                sample.buckets = entry->histogram.buckets();
                break;
            }
            out.push_back(std::move(sample));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

} // namespace hpim::obs
