/**
 * @file
 * MetricsRegistry: named counters, gauges and histograms that
 * simulator components register into, snapshotted into the versioned
 * execution report (schema v2 adds a "metrics" array).
 *
 * Like TraceSession, a registry is attached process-wide and looked
 * up with one relaxed atomic load; with none attached every
 * instrument call is a nullptr test and the run is bit-identical to
 * an uninstrumented build. Instruments are lock-free atomics so the
 * sweep thread pool can hit them concurrently, but note the
 * determinism caveat: a *global* registry accumulating across
 * parallel sweep points interleaves nondeterministically, so
 * per-report metrics are only captured for single-run tools
 * (hpim_cli) -- SweepRunner never snapshots the registry into
 * per-point reports.
 *
 * Histograms bucket by power of two: value v lands in bucket
 * ilogb(v) clamped to [-64, 63], stored at index ilogb+64. That is
 * coarse but needs no a-priori range and serializes sparsely.
 */

#ifndef HPIM_OBS_METRICS_HH
#define HPIM_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hpim::obs {

/** What a MetricSample describes. */
enum class MetricKind : std::uint8_t
{
    Counter,   ///< monotonically increasing event count
    Gauge,     ///< last-written level
    Histogram, ///< distribution over log2 buckets
};

/** @return stable wire name ("counter"/"gauge"/"histogram"). */
const char *metricKindName(MetricKind kind);

/** @return parsed kind; fatal() on an unknown name. */
MetricKind metricKindFromName(const std::string &name);

/** Number of log2 buckets a histogram keeps (ilogb -64 .. 63). */
inline constexpr std::size_t kHistogramBuckets = 128;

/** One [bucket index, count] pair of a sparse histogram. */
struct HistogramBucket
{
    std::uint32_t index = 0;
    std::uint64_t count = 0;

    bool
    operator==(const HistogramBucket &other) const
    {
        return index == other.index && count == other.count;
    }
};

/**
 * A point-in-time copy of one instrument, the unit of report
 * serialization. Counter uses `count`; Gauge uses `value`; Histogram
 * uses count/sum/min/max/buckets.
 */
struct MetricSample
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t count = 0;
    double value = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<HistogramBucket> buckets;

    bool operator==(const MetricSample &other) const;
};

/** Monotonic event counter. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/** Last-written level (queue depth, alive units, ...). */
class Gauge
{
  public:
    void
    set(double v)
    {
        _value.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> _value{0.0};
};

/** Log2-bucketed distribution; see file comment for the binning. */
class Histogram
{
  public:
    Histogram();

    void observe(double value);

    std::uint64_t count() const;
    double sum() const;
    double min() const;
    double max() const;

    /** Non-empty buckets as [index, count], index ascending. */
    std::vector<HistogramBucket> buckets() const;

  private:
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> _buckets;
    std::atomic<std::uint64_t> _count{0};
    std::atomic<double> _sum{0.0};
    std::atomic<double> _min;
    std::atomic<double> _max;
};

/**
 * The registry: owns instruments keyed by name. Registration takes a
 * mutex; returned references stay valid for the registry's lifetime,
 * so components register once and update lock-free.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Install as the process-global registry; fatal() if taken. */
    void attach();

    /** Uninstall; instruments stay readable. Idempotent. */
    void detach();

    /** @return the attached registry, or nullptr (one load). */
    static MetricsRegistry *
    current()
    {
        return s_current.load(std::memory_order_acquire);
    }

    /**
     * Find-or-create by name. fatal() if @p name already names an
     * instrument of a different kind.
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Point-in-time copy of every instrument, sorted by name. */
    std::vector<MetricSample> snapshot() const;

  private:
    struct Entry;

    Entry &lookup(const std::string &name, MetricKind kind);

    static std::atomic<MetricsRegistry *> s_current;

    mutable std::mutex _mutex;
    std::vector<std::unique_ptr<Entry>> _entries;
    bool _attached = false;
};

} // namespace hpim::obs

#endif // HPIM_OBS_METRICS_HH
