#include "cpu/cpu_model.hh"

#include "sim/logging.hh"

namespace hpim::cpu {

OpTiming
CpuModel::opTiming(const hpim::nn::CostStructure &cost) const
{
    OpTiming t;
    double flop_time = cost.flops() / _params.flopsPerSec;
    double special_time = cost.specials / _params.specialsPerSec;
    t.computeSec = flop_time + special_time;
    t.memorySec = cost.bytes() / _params.memBandwidth;
    t.overheadSec = _params.opOverheadSec;
    return t;
}

} // namespace hpim::cpu
