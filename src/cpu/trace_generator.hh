/**
 * @file
 * Synthetic memory-trace generation.
 *
 * Substitutes for the paper's Pin-based trace collector: given an op's
 * cost structure, emits a deterministic address stream with the op's
 * streaming/strided/random mix, suitable for driving the cache
 * hierarchy and the HMC stack in trace-driven mode.
 */

#ifndef HPIM_CPU_TRACE_GENERATOR_HH
#define HPIM_CPU_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "mem/memory_request.hh"
#include "nn/op_cost.hh"
#include "nn/op_type.hh"
#include "sim/rng.hh"

namespace hpim::cpu {

/** Access-pattern class of an op's traffic. */
enum class AccessPattern
{
    Streaming, ///< unit-stride over the tensors (elementwise, bias)
    Strided,   ///< blocked walks (conv/matmul tiles)
    Random,    ///< gather/scatter (embedding, dropout masks)
};

/** @return the dominant pattern for an op type. */
AccessPattern accessPattern(hpim::nn::OpType type);

/** Configuration of the trace generator. */
struct TraceConfig
{
    std::uint32_t lineBytes = 64;
    /** Cap on generated requests per op (sampling factor applied). */
    std::size_t maxRequests = 100000;
    std::uint64_t seed = 42;
};

/**
 * Generates a memory request stream for one op.
 *
 * The stream is a *sample* of the op's true traffic: when the op
 * touches more lines than maxRequests, a proportional sample is
 * produced and `scale()` reports the ratio so counts can be rescaled.
 */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const TraceConfig &config = TraceConfig{})
        : _config(config), _rng(config.seed)
    {}

    /**
     * @param type op type (selects the pattern)
     * @param cost traffic volume
     * @param base base address of the op's working set
     * @return sampled request stream with arrival tick 0
     */
    std::vector<hpim::mem::MemoryRequest>
    generate(hpim::nn::OpType type, const hpim::nn::CostStructure &cost,
             hpim::mem::Addr base = 0);

    /** @return 1/sampling-rate of the last generate() call. */
    double scale() const { return _scale; }

  private:
    TraceConfig _config;
    hpim::sim::Rng _rng;
    double _scale = 1.0;
    std::uint64_t _next_id = 0;
};

} // namespace hpim::cpu

#endif // HPIM_CPU_TRACE_GENERATOR_HH
