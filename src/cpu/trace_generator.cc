#include "cpu/trace_generator.hh"

#include <algorithm>

namespace hpim::cpu {

using hpim::mem::AccessType;
using hpim::mem::Addr;
using hpim::mem::MemoryRequest;
using hpim::nn::OpType;

AccessPattern
accessPattern(OpType type)
{
    switch (type) {
      case OpType::MatMul:
      case OpType::Conv2D:
      case OpType::Conv2DBackpropFilter:
      case OpType::Conv2DBackpropInput:
      case OpType::MatMulGradWeights:
      case OpType::MatMulGradInputs:
      case OpType::LstmCell:
      case OpType::LstmCellGrad:
        return AccessPattern::Strided;
      case OpType::EmbeddingLookup:
      case OpType::EmbeddingGrad:
      case OpType::Dropout:
      case OpType::DropoutGrad:
      case OpType::NceLoss:
      case OpType::MaxPoolGrad:
        return AccessPattern::Random;
      default:
        return AccessPattern::Streaming;
    }
}

std::vector<MemoryRequest>
TraceGenerator::generate(OpType type, const hpim::nn::CostStructure &cost,
                         Addr base)
{
    AccessPattern pattern = accessPattern(type);

    auto total_lines = static_cast<std::uint64_t>(
        cost.bytes() / _config.lineBytes);
    total_lines = std::max<std::uint64_t>(total_lines, 1);
    std::uint64_t emit = std::min<std::uint64_t>(total_lines,
                                                 _config.maxRequests);
    _scale = static_cast<double>(total_lines)
             / static_cast<double>(emit);

    double write_fraction =
        cost.bytes() > 0.0 ? cost.bytesWritten / cost.bytes() : 0.0;

    std::vector<MemoryRequest> out;
    out.reserve(emit);

    Addr cursor = base;
    const Addr stride = _config.lineBytes;
    // Strided patterns revisit a tile: jump back every `tile` lines.
    const std::uint64_t tile = 512;
    const Addr region = total_lines * stride;

    for (std::uint64_t i = 0; i < emit; ++i) {
        MemoryRequest req;
        req.id = _next_id++;
        req.bytes = _config.lineBytes;
        req.type = _rng.chance(write_fraction) ? AccessType::Write
                                               : AccessType::Read;
        req.arrival = 0;

        switch (pattern) {
          case AccessPattern::Streaming:
            req.addr = cursor;
            cursor += stride;
            break;
          case AccessPattern::Strided:
            if (i % tile == tile - 1) {
                // Jump to a new tile start.
                cursor = base + (_rng.below(std::max<std::uint64_t>(
                             total_lines / tile, 1)))
                             * tile * stride;
            } else {
                cursor += stride;
            }
            req.addr = cursor;
            break;
          case AccessPattern::Random:
            req.addr = base + _rng.below(std::max<Addr>(region, stride));
            req.addr -= req.addr % stride;
            break;
        }
        out.push_back(req);
    }
    return out;
}

} // namespace hpim::cpu
