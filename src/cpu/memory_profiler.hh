/**
 * @file
 * Empirical (trace-driven) per-operation memory profiling.
 *
 * The analytic cost model charges each op its compulsory traffic.
 * This profiler measures instead: it replays a synthetic trace of the
 * op through the host cache hierarchy (as the paper's Pin-based flow
 * measured real runs through real caches) and reports the observed
 * main-memory accesses, the cache-filtering factor, and -- optionally
 * -- the DRAM row-buffer behaviour by draining the misses through an
 * HMC stack.
 */

#ifndef HPIM_CPU_MEMORY_PROFILER_HH
#define HPIM_CPU_MEMORY_PROFILER_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "cpu/trace_generator.hh"
#include "mem/hmc_stack.hh"
#include "nn/graph.hh"

namespace hpim::cpu {

/** Measured memory behaviour of one op. */
struct MemoryProfile
{
    hpim::nn::OpId id = hpim::nn::invalidOp;
    hpim::nn::OpType type = hpim::nn::OpType::MatMul;
    /** Trace lines issued (after sampling rescale). */
    double issuedAccesses = 0.0;
    /** Accesses that missed the whole hierarchy (rescaled). */
    double mainMemoryAccesses = 0.0;
    /** mainMemory / issued: 1.0 = caches filter nothing. */
    double missFactor = 0.0;
    /** Fraction of DRAM requests that hit an open row (when the
     *  stack replay is enabled; 0 otherwise). */
    double rowHitRate = 0.0;
};

/** Whole-graph measurement. */
struct MemoryProfileReport
{
    std::vector<MemoryProfile> ops;
    double totalMainMemoryAccesses = 0.0;
};

/** Trace-driven memory profiler. */
class MemoryProfiler
{
  public:
    /**
     * @param trace_config sampling configuration
     * @param replay_dram when true, misses are drained through an
     *        HMC stack to measure row-buffer locality (slower)
     */
    explicit MemoryProfiler(const TraceConfig &trace_config =
                                TraceConfig{},
                            bool replay_dram = false)
        : _trace_config(trace_config), _replay_dram(replay_dram)
    {}

    /**
     * Measure one op.
     * @param op the operation
     * @param hierarchy cache hierarchy to filter through (state is
     *        carried across calls, like a real run)
     */
    MemoryProfile profileOp(const hpim::nn::Operation &op,
                            hpim::cache::CacheHierarchy &hierarchy);

    /** Measure every op of a step, one by one on a fresh hierarchy
     *  (inter-op parallelism disabled, paper SectionII-A). */
    MemoryProfileReport profileGraph(const hpim::nn::Graph &graph);

  private:
    TraceConfig _trace_config;
    bool _replay_dram;
    std::uint64_t _next_base = 0;
};

} // namespace hpim::cpu

#endif // HPIM_CPU_MEMORY_PROFILER_HH
