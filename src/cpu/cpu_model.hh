/**
 * @file
 * Analytic host-CPU timing/power model (Xeon E5-2630 v3-like,
 * paper Table IV).
 *
 * Per-op time follows a roofline: max(compute, special-op, memory)
 * plus a fixed framework dispatch overhead. Memory time uses the
 * effective main-memory bandwidth -- DDR4 when the host owns its own
 * DIMMs, or the stack's external links when main memory is the cube
 * (PIM system configurations).
 */

#ifndef HPIM_CPU_CPU_MODEL_HH
#define HPIM_CPU_CPU_MODEL_HH

#include "nn/op_cost.hh"

namespace hpim::cpu {

/** CPU model parameters. */
struct CpuParams
{
    double frequencyHz = 2.4e9;
    int cores = 8;
    /** Sustained FP32 multiply/add throughput (whole socket;
     *  8 Haswell cores x AVX2 FMA at ~50% efficiency). */
    double flopsPerSec = 180e9;
    /** Sustained special-op (compare/exp/gather) throughput. */
    double specialsPerSec = 40e9;
    /** Effective main-memory bandwidth, bytes/s. */
    double memBandwidth = 50e9;
    /** Per-operation framework dispatch overhead, seconds. */
    double opOverheadSec = 25e-6;
    /** Dynamic power under load (socket + DIMM I/O), watts. */
    double dynamicPowerW = 65.0;
    /** Idle power: package + uncore + DIMM refresh while the host
     *  waits on accelerators. Counted against every configuration
     *  because the paper evaluates full-system power. */
    double idlePowerW = 35.0;
};

/** Time components of one op execution. */
struct OpTiming
{
    double computeSec = 0.0;  ///< FP + special work at full throughput
    double memorySec = 0.0;   ///< DRAM traffic at effective bandwidth
    double overheadSec = 0.0; ///< dispatch overhead

    /** Total wall time: overlapped compute/memory + overhead. */
    double
    totalSec() const
    {
        double core = computeSec > memorySec ? computeSec : memorySec;
        return core + overheadSec;
    }

    /** Memory stall time not hidden by compute. */
    double
    exposedMemorySec() const
    {
        return memorySec > computeSec ? memorySec - computeSec : 0.0;
    }
};

/** The host CPU. */
class CpuModel
{
  public:
    explicit CpuModel(const CpuParams &params = CpuParams{})
        : _params(params)
    {}

    /** @return timing of @p cost executed with full-socket resources. */
    OpTiming opTiming(const hpim::nn::CostStructure &cost) const;

    /** Convenience: total seconds for @p cost. */
    double opSeconds(const hpim::nn::CostStructure &cost) const
    { return opTiming(cost).totalSec(); }

    /**
     * Main-memory accesses (64B lines) an op generates -- the
     * profiler's second metric (paper SectionIII-C step 1).
     */
    double mainMemoryAccesses(const hpim::nn::CostStructure &cost) const
    { return cost.bytes() / 64.0; }

    const CpuParams &params() const { return _params; }

    /** Replace the memory bandwidth (PIM systems: external links). */
    void setMemBandwidth(double bytes_per_sec)
    { _params.memBandwidth = bytes_per_sec; }

  private:
    CpuParams _params;
};

} // namespace hpim::cpu

#endif // HPIM_CPU_CPU_MODEL_HH
