#include "cpu/memory_profiler.hh"

namespace hpim::cpu {

using hpim::nn::Graph;
using hpim::nn::Operation;

MemoryProfile
MemoryProfiler::profileOp(const Operation &op,
                          hpim::cache::CacheHierarchy &hierarchy)
{
    MemoryProfile profile;
    profile.id = op.id;
    profile.type = op.type;

    TraceGenerator gen(_trace_config);
    // Each op works on its own region of the address space so that
    // consecutive ops interact only through shared cache capacity.
    auto trace = gen.generate(op.type, op.cost,
                              _next_base);
    _next_base += 1ULL << 32;

    std::uint64_t misses = 0;
    mem::HmcStack *stack = nullptr;
    mem::HmcStack replay_stack{mem::HmcConfig{}};
    if (_replay_dram)
        stack = &replay_stack;

    for (const auto &req : trace) {
        auto result = hierarchy.access(req.addr, req.type);
        if (result.mainMemory) {
            ++misses;
            if (stack) {
                mem::MemoryRequest miss = req;
                miss.addr %= stack->capacity();
                stack->enqueue(miss);
            }
        }
    }

    double scale = gen.scale();
    profile.issuedAccesses =
        static_cast<double>(trace.size()) * scale;
    profile.mainMemoryAccesses = static_cast<double>(misses) * scale;
    profile.missFactor =
        trace.empty() ? 0.0
                      : static_cast<double>(misses)
                            / static_cast<double>(trace.size());

    if (stack && misses > 0) {
        stack->drainAll();
        std::uint64_t hits = 0, opens = 0;
        for (std::uint32_t v = 0; v < stack->vaultCount(); ++v) {
            for (std::uint32_t b = 0;
                 b < stack->vault(v).bankCount(); ++b) {
                const auto &c = stack->vault(v).bank(b).counters();
                hits += c.rowHits;
                opens += c.rowHits + c.rowMisses + c.rowConflicts;
            }
        }
        profile.rowHitRate =
            opens == 0 ? 0.0
                       : static_cast<double>(hits)
                             / static_cast<double>(opens);
    }
    return profile;
}

MemoryProfileReport
MemoryProfiler::profileGraph(const Graph &graph)
{
    MemoryProfileReport report;
    auto hierarchy = hpim::cache::CacheHierarchy::xeonLike();
    for (const Operation &op : graph.ops()) {
        MemoryProfile p = profileOp(op, hierarchy);
        report.totalMainMemoryAccesses += p.mainMemoryAccesses;
        report.ops.push_back(p);
    }
    hierarchy.publishMetrics();
    return report;
}

} // namespace hpim::cpu
