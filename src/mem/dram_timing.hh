/**
 * @file
 * DRAM timing parameter sets.
 *
 * All constraints are expressed in memory-clock cycles relative to tCK.
 * Presets: an HMC-2.0-like 3D stack (paper SectionV: 312.5 MHz logic/bus
 * clock) and a DDR4-2133 channel for the host CPU baseline.
 * Frequency-scaling experiments (paper Fig. 11/17) use scaled().
 */

#ifndef HPIM_MEM_DRAM_TIMING_HH
#define HPIM_MEM_DRAM_TIMING_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace hpim::mem {

/** Timing constraints for one DRAM device/vault, in cycles of tCK. */
struct DramTiming
{
    /** Cycle time in ticks (ps). */
    hpim::sim::Tick tCK;

    std::uint32_t tRCD; ///< ACT -> internal RD/WR
    std::uint32_t tCL;  ///< RD -> first data
    std::uint32_t tRP;  ///< PRE -> ACT
    std::uint32_t tRAS; ///< ACT -> PRE (minimum row open time)
    std::uint32_t tWR;  ///< end of write data -> PRE
    std::uint32_t tCCD; ///< column-to-column (burst gap)
    std::uint32_t tRRD; ///< ACT -> ACT, different banks
    std::uint32_t tBurst; ///< cycles to stream one burst on the bus
    std::uint32_t tREFI;  ///< average refresh interval
    std::uint32_t tRFC;   ///< refresh cycle time (all banks blocked)

    std::uint32_t burstBytes; ///< bytes transferred per burst

    /** @return row-hit read latency in ticks (CAS + burst). */
    hpim::sim::Tick rowHitLatency() const
    { return static_cast<hpim::sim::Tick>(tCL + tBurst) * tCK; }

    /** @return closed-row read latency in ticks (RCD + CAS + burst). */
    hpim::sim::Tick rowClosedLatency() const
    { return static_cast<hpim::sim::Tick>(tRCD + tCL + tBurst) * tCK; }

    /** @return row-conflict latency in ticks (PRE + ACT + CAS + burst). */
    hpim::sim::Tick rowConflictLatency() const
    {
        return static_cast<hpim::sim::Tick>(tRP + tRCD + tCL + tBurst)
               * tCK;
    }

    /** @return peak per-bank data bandwidth in bytes/second. */
    double peakBankBandwidth() const;

    /**
     * @return a copy with the clock scaled by @p factor (>1 = faster);
     * cycle-denominated constraints are unchanged, so absolute latencies
     * shrink with frequency as in the paper's PLL-based scaling.
     */
    DramTiming scaled(double factor) const;
};

/**
 * HMC-2.0-flavoured vault timing at the paper's 312.5 MHz base clock.
 * One burst moves 32 bytes on the 32-bit-wide vault data path.
 */
DramTiming hmc2Timing();

/** DDR4-2133-flavoured channel timing for the host memory system. */
DramTiming ddr4Timing();

} // namespace hpim::mem

#endif // HPIM_MEM_DRAM_TIMING_HH
