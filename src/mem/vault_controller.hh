/**
 * @file
 * Per-vault memory controller with FR-FCFS scheduling.
 *
 * Requests are enqueued with arrival times; the controller issues them
 * to its banks preferring row hits (first-ready) and otherwise oldest
 * first (FCFS), within a bounded reorder window.
 */

#ifndef HPIM_MEM_VAULT_CONTROLLER_HH
#define HPIM_MEM_VAULT_CONTROLLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/address_mapping.hh"
#include "mem/bank.hh"
#include "mem/dram_timing.hh"
#include "mem/memory_request.hh"
#include "mem/request_ring.hh"

namespace hpim::mem {

/** Scheduling policy for the vault controller. */
enum class SchedulingPolicy { FCFS, FRFCFS };

/** Aggregated controller statistics. */
struct VaultStats
{
    std::uint64_t requests = 0;
    std::uint64_t refreshRounds = 0; ///< all-bank refreshes issued
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;
    double totalLatency = 0.0; ///< sum of (completion - arrival) in ticks
    hpim::sim::Tick lastCompletion = 0;

    double
    averageLatency() const
    {
        return requests == 0 ? 0.0
                             : totalLatency / static_cast<double>(requests);
    }
};

/**
 * One vault: several banks behind a shared command/data path.
 */
class VaultController
{
  public:
    /**
     * @param timing vault DRAM timing
     * @param banks number of banks in the vault
     * @param policy request scheduling policy
     * @param window FR-FCFS reorder window (queue entries inspected)
     */
    VaultController(const DramTiming &timing, std::uint32_t banks,
                    SchedulingPolicy policy = SchedulingPolicy::FRFCFS,
                    std::size_t window = 8);

    /** Queue a request; its coord must target this vault's banks. */
    void enqueue(const MemoryRequest &req, const DramCoord &coord);

    /** @return true if requests are pending. */
    bool busy() const { return !_queue.empty(); }

    /**
     * Drain the queue, filling completion times.
     * @return completed requests in completion order.
     */
    std::vector<MemoryRequest> drain();

    const VaultStats &stats() const { return _stats; }
    const Bank &bank(std::uint32_t i) const;
    std::uint32_t bankCount() const
    { return static_cast<std::uint32_t>(_banks.size()); }

    /** Frequency scaling support; affects future requests only. */
    void setTiming(const DramTiming &timing);

    /** Label used as the obs trace track ("vault 3"); the enclosing
     *  HmcStack assigns one per vault. */
    void setName(std::string name) { _name = std::move(name); }
    const std::string &name() const { return _name; }

    /** Request-arena capacity (ring slots); flat in steady state. */
    std::size_t queueCapacity() const { return _queue.capacity(); }
    /** Times the request arena grew since construction. */
    std::uint64_t queueGrows() const { return _queue.grows(); }

  private:
    struct Pending
    {
        MemoryRequest req;
        DramCoord coord;
        /** Row-hit cache: valid while the target bank's epoch still
         *  equals epochSeen (0 = never computed). */
        std::uint64_t epochSeen = 0;
        bool rowHit = false;
    };

    /** Pick the next queue index to service at time @p now. */
    std::size_t pickNext(hpim::sim::Tick now);

    DramTiming _timing;
    SchedulingPolicy _policy;
    std::size_t _window;
    /** Issue any refresshes due at or before @p now. */
    void catchUpRefresh(hpim::sim::Tick now);

    std::vector<Bank> _banks;
    /** One counter per bank, bumped whenever that bank's open-row
     *  state may have changed; pending entries recheck their row-hit
     *  bit only when the epoch moved past the one they cached. */
    std::vector<std::uint64_t> _bank_epochs;
    RequestRing<Pending> _queue;
    hpim::sim::Tick _bus_free = 0;
    hpim::sim::Tick _next_refresh = 0;
    VaultStats _stats;
    std::string _name = "vault";
};

} // namespace hpim::mem

#endif // HPIM_MEM_VAULT_CONTROLLER_HH
