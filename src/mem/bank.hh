/**
 * @file
 * A single DRAM bank modelled as a row-buffer state machine.
 *
 * Tracks the open row and the earliest ticks at which the next
 * activate / column access / precharge may occur, and counts the
 * row-hit / row-miss / row-conflict breakdown plus command energy
 * events that feed DramEnergyModel.
 */

#ifndef HPIM_MEM_BANK_HH
#define HPIM_MEM_BANK_HH

#include <cstdint>

#include "mem/dram_timing.hh"
#include "mem/memory_request.hh"

namespace hpim::mem {

/** Per-bank command/energy counters. */
struct BankCounters
{
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;   ///< closed row, ACT needed
    std::uint64_t rowConflicts = 0; ///< wrong row open, PRE+ACT needed
    std::uint64_t refreshes = 0;
};

/** Row-buffer state machine for one bank. */
class Bank
{
  public:
    explicit Bank(const DramTiming &timing);

    /**
     * Service a single burst access to @p row.
     *
     * @param row target row
     * @param type read or write
     * @param earliest earliest allowed issue tick
     * @return tick at which the burst's data completes
     */
    hpim::sim::Tick access(std::uint32_t row, AccessType type,
                           hpim::sim::Tick earliest);

    /** @return true if some row is open. */
    bool rowOpen() const { return _row_open; }

    /** @return the open row (valid only when rowOpen()). */
    std::uint32_t openRow() const { return _open_row; }

    /** Force-precharge the bank (e.g. refresh boundary). */
    void precharge(hpim::sim::Tick now);

    /**
     * Refresh the bank at @p now: closes the row and blocks the bank
     * for tRFC. Counted in BankCounters::refreshes.
     */
    void refresh(hpim::sim::Tick now);

    const BankCounters &counters() const { return _counters; }

    /** @return tick when the bank next becomes usable. */
    hpim::sim::Tick readyAt() const { return _next_column; }

    /** Replace the timing set (frequency scaling). Keeps counters. */
    void setTiming(const DramTiming &timing) { _timing = timing; }

  private:
    DramTiming _timing;
    bool _row_open = false;
    std::uint32_t _open_row = 0;
    hpim::sim::Tick _next_activate = 0;
    hpim::sim::Tick _next_column = 0;
    hpim::sim::Tick _next_precharge = 0;
    BankCounters _counters;
};

} // namespace hpim::mem

#endif // HPIM_MEM_BANK_HH
