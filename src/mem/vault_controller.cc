#include "mem/vault_controller.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace hpim::mem {

using hpim::sim::Tick;

VaultController::VaultController(const DramTiming &timing,
                                 std::uint32_t banks,
                                 SchedulingPolicy policy,
                                 std::size_t window)
    : _timing(timing), _policy(policy), _window(window)
{
    fatal_if(banks == 0, "vault needs at least one bank");
    fatal_if(window == 0, "reorder window must be at least 1");
    _banks.assign(banks, Bank(timing));
    _bank_epochs.assign(banks, 1);
}

void
VaultController::enqueue(const MemoryRequest &req, const DramCoord &coord)
{
    panic_if(coord.bank >= _banks.size(), "request targets bank ",
             coord.bank, " but vault has ", _banks.size());
    _queue.push_back(Pending{req, coord});
}

const Bank &
VaultController::bank(std::uint32_t i) const
{
    panic_if(i >= _banks.size(), "bank index out of range");
    return _banks[i];
}

void
VaultController::setTiming(const DramTiming &timing)
{
    _timing = timing;
    for (std::size_t b = 0; b < _banks.size(); ++b) {
        _banks[b].setTiming(timing);
        ++_bank_epochs[b];
    }
}

std::size_t
VaultController::pickNext(Tick now)
{
    if (_policy == SchedulingPolicy::FCFS)
        return 0;

    // FR-FCFS: among the first `window` arrived requests, prefer a
    // row hit to an already-open row; break ties oldest-first. The
    // row-hit bit is cached per entry and recomputed only when the
    // target bank's epoch moved, so issuing to bank A does not make
    // entries for bank B re-derive their state next pick.
    std::size_t limit = std::min(_window, _queue.size());
    for (std::size_t i = 0; i < limit; ++i) {
        Pending &p = _queue[i];
        if (p.req.arrival > now)
            continue;
        std::uint64_t epoch = _bank_epochs[p.coord.bank];
        if (p.epochSeen != epoch) {
            const Bank &bank = _banks[p.coord.bank];
            p.rowHit =
                bank.rowOpen() && bank.openRow() == p.coord.row;
            p.epochSeen = epoch;
        }
        if (p.rowHit)
            return i;
    }
    return 0;
}

void
VaultController::catchUpRefresh(Tick now)
{
    if (_timing.tREFI == 0)
        return;
    Tick refi = Tick(_timing.tREFI) * _timing.tCK;
    if (_next_refresh == 0)
        _next_refresh = refi;
    bool refreshed = false;
    while (_next_refresh <= now) {
        for (auto &bank : _banks)
            bank.refresh(_next_refresh);
        ++_stats.refreshRounds;
        _next_refresh += refi;
        refreshed = true;
    }
    if (refreshed) {
        // Refresh closed every row; all cached row-hit bits are stale.
        for (std::uint64_t &epoch : _bank_epochs)
            ++epoch;
    }
}

std::vector<MemoryRequest>
VaultController::drain()
{
    std::vector<MemoryRequest> done;
    done.reserve(_queue.size());

    auto *session = hpim::obs::TraceSession::current();
    auto *registry = hpim::obs::MetricsRegistry::current();
    hpim::obs::TrackId track = session ? session->track(_name) : 0;

    Tick now = 0;
    while (!_queue.empty()) {
        // Advance "now" to at least the oldest arrival so picks are sane.
        now = std::max(now, _queue.front().req.arrival);
        std::size_t idx = pickNext(now);
        Pending p = _queue[idx];
        _queue.erase(idx);

        Tick earliest = std::max({p.req.arrival, _bus_free, now});
        catchUpRefresh(earliest);
        std::uint32_t bursts =
            (p.req.bytes + _timing.burstBytes - 1) / _timing.burstBytes;
        bursts = std::max(bursts, 1u);

        // A closed or mismatching row means the first burst will
        // activate; record the DRAM row activation on the timeline.
        const Bank &target = _banks[p.coord.bank];
        bool row_hit =
            target.rowOpen() && target.openRow() == p.coord.row;

        Tick completion = earliest;
        for (std::uint32_t b = 0; b < bursts; ++b) {
            completion = _banks[p.coord.bank].access(
                p.coord.row, p.req.type, completion);
        }
        // The access changed the bank's open row; cached row-hit bits
        // for other entries on this bank must recompute.
        ++_bank_epochs[p.coord.bank];
        // The shared data path is occupied until the last beat.
        _bus_free = completion;
        now = std::max(now, earliest);

        p.req.completion = completion;
        ++_stats.requests;
        if (p.req.type == AccessType::Read)
            _stats.readBytes += p.req.bytes;
        else
            _stats.writeBytes += p.req.bytes;
        _stats.totalLatency +=
            static_cast<double>(completion - p.req.arrival);
        _stats.lastCompletion = std::max(_stats.lastCompletion, completion);

        if (session) {
            double start = hpim::sim::ticksToSeconds(earliest);
            double end = hpim::sim::ticksToSeconds(completion);
            if (!row_hit) {
                session->instant(
                    track, "row activate", start,
                    {{"bank", static_cast<std::int64_t>(p.coord.bank)},
                     {"row", static_cast<std::int64_t>(p.coord.row)}});
            }
            session->span(
                track,
                p.req.type == AccessType::Read ? "read" : "write",
                start, end - start,
                {{"bank", static_cast<std::int64_t>(p.coord.bank)},
                 {"bytes", static_cast<std::int64_t>(p.req.bytes)},
                 {"row_hit", std::string(row_hit ? "yes" : "no")}});
        }
        if (registry) {
            registry->counter("mem.requests").add(1);
            registry->counter(p.req.type == AccessType::Read
                                  ? "mem.read_bytes"
                                  : "mem.write_bytes")
                .add(p.req.bytes);
            if (!row_hit)
                registry->counter("mem.row_activates").add(1);
            registry->histogram("mem.request_latency_s")
                .observe(hpim::sim::ticksToSeconds(completion)
                         - hpim::sim::ticksToSeconds(p.req.arrival));
        }
        done.push_back(p.req);
    }

    if (registry) {
        // Request-arena health: steady-state runs hold both flat
        // (no allocation per request, see docs/PERFORMANCE.md).
        registry->gauge("mem.arena.capacity")
            .set(static_cast<std::int64_t>(_queue.capacity()));
        registry->gauge("mem.arena.grows")
            .set(static_cast<std::int64_t>(_queue.grows()));
    }

    std::sort(done.begin(), done.end(),
              [](const MemoryRequest &a, const MemoryRequest &b) {
                  return a.completion < b.completion;
              });
    return done;
}

} // namespace hpim::mem
