/**
 * @file
 * A growable power-of-two ring buffer used as the request arena of
 * the vault controllers.
 *
 * The controller's FR-FCFS queue only ever erases inside its small
 * reorder window (the first few entries), so removal shifts at most
 * window-1 elements instead of half the container the way a
 * std::deque erase can. Capacity grows geometrically and is never
 * returned, so the steady-state enqueue/issue cycle performs no
 * allocation; grows() exposes the (cumulative) grow count so tests
 * and the obs metrics can verify that (docs/PERFORMANCE.md).
 */

#ifndef HPIM_MEM_REQUEST_RING_HH
#define HPIM_MEM_REQUEST_RING_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hpim::mem {

template <typename T>
class RequestRing
{
  public:
    explicit RequestRing(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 1;
        while (cap < initial_capacity)
            cap <<= 1;
        _slots.resize(cap);
    }

    bool empty() const { return _count == 0; }
    std::size_t size() const { return _count; }
    std::size_t capacity() const { return _slots.size(); }

    /** Times the backing storage grew since construction. */
    std::uint64_t grows() const { return _grows; }

    /** @param i logical index: 0 is the oldest entry. */
    T &operator[](std::size_t i) { return _slots[slot(i)]; }
    const T &operator[](std::size_t i) const { return _slots[slot(i)]; }

    T &front() { return _slots[_head]; }
    const T &front() const { return _slots[_head]; }

    void
    push_back(T value)
    {
        if (_count == _slots.size())
            grow();
        _slots[slot(_count)] = std::move(value);
        ++_count;
    }

    /**
     * Remove logical index @p i, preserving the order of the rest.
     * Shifts the i entries in front of it (the erase sites keep i
     * inside the reorder window, so this stays O(window)).
     */
    void
    erase(std::size_t i)
    {
        for (std::size_t j = i; j > 0; --j)
            _slots[slot(j)] = std::move(_slots[slot(j - 1)]);
        _head = (_head + 1) & (_slots.size() - 1);
        --_count;
    }

  private:
    std::size_t slot(std::size_t i) const
    { return (_head + i) & (_slots.size() - 1); }

    void
    grow()
    {
        std::vector<T> bigger(_slots.size() * 2);
        for (std::size_t i = 0; i < _count; ++i)
            bigger[i] = std::move(_slots[slot(i)]);
        _slots.swap(bigger);
        _head = 0;
        ++_grows;
    }

    std::vector<T> _slots; ///< power-of-two capacity
    std::size_t _head = 0;
    std::size_t _count = 0;
    std::uint64_t _grows = 0;
};

} // namespace hpim::mem

#endif // HPIM_MEM_REQUEST_RING_HH
