#include "mem/dram_timing.hh"

#include "sim/logging.hh"

namespace hpim::mem {

using hpim::sim::Tick;
using hpim::sim::ticksPerSecond;

double
DramTiming::peakBankBandwidth() const
{
    double burst_seconds =
        static_cast<double>(static_cast<Tick>(tCCD) * tCK)
        / static_cast<double>(ticksPerSecond);
    return static_cast<double>(burstBytes) / burst_seconds;
}

DramTiming
DramTiming::scaled(double factor) const
{
    fatal_if(factor <= 0.0, "timing scale factor must be positive");
    DramTiming t = *this;
    t.tCK = static_cast<Tick>(static_cast<double>(tCK) / factor + 0.5);
    fatal_if(t.tCK == 0, "timing scale factor ", factor, " too large");
    return t;
}

DramTiming
hmc2Timing()
{
    DramTiming t{};
    // 312.5 MHz -> 3200 ps cycle (paper SectionV-A, HMC 2.0 spec).
    t.tCK = 3200;
    t.tRCD = 5;
    t.tCL = 5;
    t.tRP = 5;
    t.tRAS = 12;
    t.tWR = 6;
    t.tCCD = 2;
    t.tRRD = 2;
    t.tBurst = 2;
    // 3.9 us refresh interval / 160 ns refresh cycle at 3.2 ns tCK.
    t.tREFI = 1219;
    t.tRFC = 50;
    // 64 B per burst window: two 32 B beats on the DDR vault data
    // path -> 10 GB/s per vault, 320 GB/s across 32 vaults, matching
    // SystemConfig::internalBandwidth.
    t.burstBytes = 64;
    return t;
}

DramTiming
ddr4Timing()
{
    DramTiming t{};
    // DDR4-2133: 1066.67 MHz command clock -> ~938 ps cycle.
    t.tCK = 938;
    t.tRCD = 15;
    t.tCL = 15;
    t.tRP = 15;
    t.tRAS = 36;
    t.tWR = 16;
    t.tCCD = 4;
    t.tRRD = 5;
    t.tBurst = 4;
    // 7.8 us / 350 ns at 938 ps tCK.
    t.tREFI = 8315;
    t.tRFC = 373;
    t.burstBytes = 64;
    return t;
}

} // namespace hpim::mem
