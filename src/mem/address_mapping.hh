/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 *
 * Decomposes a flat physical address into (vault, bank, row, column)
 * using power-of-two field widths. The interleaving order determines
 * how sequential streams spread across vaults -- PIM locality (mapping
 * operations next to their input banks, paper SectionIV-D) depends on it.
 */

#ifndef HPIM_MEM_ADDRESS_MAPPING_HH
#define HPIM_MEM_ADDRESS_MAPPING_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"

namespace hpim::mem {

/** Physical memory address. */
using Addr = std::uint64_t;

/** Coordinates of one DRAM access. */
struct DramCoord
{
    std::uint32_t vault;
    std::uint32_t bank;
    std::uint32_t row;
    std::uint32_t column;

    bool
    operator==(const DramCoord &o) const
    {
        return vault == o.vault && bank == o.bank && row == o.row
               && column == o.column;
    }
};

/** Field interleaving order, lowest-order field first. */
enum class Interleave
{
    /** row : bank : vault : column -- sequential data stripes vaults. */
    RoBaVaCo,
    /** row : vault : bank : column -- stripes banks within a vault. */
    RoVaBaCo,
    /** vault : bank : row : column -- keeps whole rows per vault. */
    VaBaRoCo,
};

/** Parses/formats the interleave name ("RoBaVaCo" etc.). */
std::string interleaveName(Interleave il);

/**
 * Address decomposer with power-of-two geometry.
 */
class AddressMapping
{
  public:
    /**
     * @param vaults number of vaults (power of two)
     * @param banks banks per vault (power of two)
     * @param rows rows per bank (power of two)
     * @param row_bytes bytes per row (power of two)
     * @param il interleaving order
     */
    AddressMapping(std::uint32_t vaults, std::uint32_t banks,
                   std::uint32_t rows, std::uint32_t row_bytes,
                   Interleave il);

    /** @return coordinates for the given address (wraps over capacity). */
    DramCoord decompose(Addr addr) const;

    /** @return total capacity in bytes. */
    std::uint64_t capacity() const;

    std::uint32_t vaults() const { return _vaults; }
    std::uint32_t banks() const { return _banks; }
    std::uint32_t rows() const { return _rows; }
    std::uint32_t rowBytes() const { return _row_bytes; }
    Interleave interleave() const { return _il; }

  private:
    static std::uint32_t log2Exact(std::uint32_t v, const char *what);

    std::uint32_t _vaults, _banks, _rows, _row_bytes;
    std::uint32_t _vault_bits, _bank_bits, _row_bits, _col_bits;
    Interleave _il;
};

} // namespace hpim::mem

#endif // HPIM_MEM_ADDRESS_MAPPING_HH
