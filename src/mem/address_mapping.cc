#include "mem/address_mapping.hh"

#include <bit>

namespace hpim::mem {

std::string
interleaveName(Interleave il)
{
    switch (il) {
      case Interleave::RoBaVaCo: return "RoBaVaCo";
      case Interleave::RoVaBaCo: return "RoVaBaCo";
      case Interleave::VaBaRoCo: return "VaBaRoCo";
    }
    return "?";
}

std::uint32_t
AddressMapping::log2Exact(std::uint32_t v, const char *what)
{
    fatal_if(v == 0 || (v & (v - 1)) != 0,
             what, " must be a power of two, got ", v);
    return static_cast<std::uint32_t>(std::countr_zero(v));
}

AddressMapping::AddressMapping(std::uint32_t vaults, std::uint32_t banks,
                               std::uint32_t rows, std::uint32_t row_bytes,
                               Interleave il)
    : _vaults(vaults), _banks(banks), _rows(rows), _row_bytes(row_bytes),
      _il(il)
{
    _vault_bits = log2Exact(vaults, "vault count");
    _bank_bits = log2Exact(banks, "bank count");
    _row_bits = log2Exact(rows, "row count");
    _col_bits = log2Exact(row_bytes, "row byte size");
}

std::uint64_t
AddressMapping::capacity() const
{
    return std::uint64_t(_vaults) * _banks * _rows * _row_bytes;
}

DramCoord
AddressMapping::decompose(Addr addr) const
{
    Addr a = addr % capacity();

    auto take = [&a](std::uint32_t bits) {
        std::uint32_t field =
            static_cast<std::uint32_t>(a & ((1ULL << bits) - 1));
        a >>= bits;
        return field;
    };

    DramCoord c{};
    switch (_il) {
      case Interleave::RoBaVaCo:
        c.column = take(_col_bits);
        c.vault = take(_vault_bits);
        c.bank = take(_bank_bits);
        c.row = take(_row_bits);
        break;
      case Interleave::RoVaBaCo:
        c.column = take(_col_bits);
        c.bank = take(_bank_bits);
        c.vault = take(_vault_bits);
        c.row = take(_row_bits);
        break;
      case Interleave::VaBaRoCo:
        c.column = take(_col_bits);
        c.row = take(_row_bits);
        c.bank = take(_bank_bits);
        c.vault = take(_vault_bits);
        break;
    }
    return c;
}

} // namespace hpim::mem
