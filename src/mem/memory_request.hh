/**
 * @file
 * Memory request descriptor shared by the vault controllers and caches.
 */

#ifndef HPIM_MEM_MEMORY_REQUEST_HH
#define HPIM_MEM_MEMORY_REQUEST_HH

#include <cstdint>

#include "mem/address_mapping.hh"
#include "sim/ticks.hh"

namespace hpim::mem {

/** Read or write. */
enum class AccessType { Read, Write };

/** One memory transaction. */
struct MemoryRequest
{
    std::uint64_t id = 0;
    Addr addr = 0;
    std::uint32_t bytes = 64;
    AccessType type = AccessType::Read;
    /** Earliest tick the request may be issued to DRAM. */
    hpim::sim::Tick arrival = 0;
    /** Filled by the controller: tick the last data beat completes. */
    hpim::sim::Tick completion = 0;
};

} // namespace hpim::mem

#endif // HPIM_MEM_MEMORY_REQUEST_HH
