#include "mem/bank.hh"

#include <algorithm>

namespace hpim::mem {

using hpim::sim::Tick;

Bank::Bank(const DramTiming &timing)
    : _timing(timing)
{
}

void
Bank::precharge(Tick now)
{
    if (!_row_open)
        return;
    Tick pre_at = std::max(now, _next_precharge);
    _row_open = false;
    _next_activate = std::max(_next_activate,
                              pre_at + Tick(_timing.tRP) * _timing.tCK);
    ++_counters.precharges;
}

void
Bank::refresh(Tick now)
{
    precharge(now);
    Tick done = now + Tick(_timing.tRFC) * _timing.tCK;
    _next_activate = std::max(_next_activate, done);
    _next_column = std::max(_next_column, done);
    ++_counters.refreshes;
}

Tick
Bank::access(std::uint32_t row, AccessType type, Tick earliest)
{
    Tick t = earliest;

    if (_row_open && _open_row == row) {
        ++_counters.rowHits;
    } else {
        if (_row_open) {
            ++_counters.rowConflicts;
            // Precharge the wrong row first.
            Tick pre_at = std::max(t, _next_precharge);
            ++_counters.precharges;
            _next_activate = std::max(
                _next_activate, pre_at + Tick(_timing.tRP) * _timing.tCK);
        } else {
            ++_counters.rowMisses;
        }
        // Activate the target row.
        Tick act_at = std::max(t, _next_activate);
        ++_counters.activates;
        _row_open = true;
        _open_row = row;
        _next_column = std::max(
            _next_column, act_at + Tick(_timing.tRCD) * _timing.tCK);
        _next_precharge = std::max(
            _next_precharge, act_at + Tick(_timing.tRAS) * _timing.tCK);
    }

    // Issue the column command.
    Tick col_at = std::max(t, _next_column);
    Tick done;
    if (type == AccessType::Read) {
        ++_counters.reads;
        done = col_at + Tick(_timing.tCL + _timing.tBurst) * _timing.tCK;
    } else {
        ++_counters.writes;
        done = col_at + Tick(_timing.tBurst) * _timing.tCK;
        _next_precharge = std::max(
            _next_precharge, done + Tick(_timing.tWR) * _timing.tCK);
    }
    _next_column = col_at + Tick(_timing.tCCD) * _timing.tCK;
    return done;
}

} // namespace hpim::mem
