#include "mem/hmc_stack.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "sim/logging.hh"

namespace hpim::mem {

HmcStack::HmcStack(const HmcConfig &config, const std::string &name)
    : Named(name),
      _config(config),
      _timing(hmc2Timing().scaled(config.frequencyScale)),
      _mapping(config.vaults, config.banksPerVault, config.rowsPerBank,
               config.rowBytes, config.interleave),
      _energy(DramEnergyParams::hmc())
{
    fatal_if(config.vaults == 0, "stack needs at least one vault");
    _vaults.reserve(config.vaults);
    for (std::uint32_t v = 0; v < config.vaults; ++v) {
        _vaults.push_back(std::make_unique<VaultController>(
            _timing, config.banksPerVault, config.policy));
        _vaults.back()->setName(name + " vault " + std::to_string(v));
    }
}

void
HmcStack::enqueue(const MemoryRequest &req)
{
    DramCoord coord = _mapping.decompose(req.addr);
    _vaults[coord.vault]->enqueue(req, coord);
}

std::vector<MemoryRequest>
HmcStack::drainAll()
{
    std::vector<MemoryRequest> all;
    for (auto &vault : _vaults) {
        auto done = vault->drain();
        all.insert(all.end(), done.begin(), done.end());
    }
    std::sort(all.begin(), all.end(),
              [](const MemoryRequest &a, const MemoryRequest &b) {
                  return a.completion < b.completion;
              });
    return all;
}

double
HmcStack::perVaultBandwidth() const
{
    return _timing.peakBankBandwidth();
}

double
HmcStack::peakInternalBandwidth() const
{
    return perVaultBandwidth() * static_cast<double>(_config.vaults);
}

double
HmcStack::peakExternalBandwidth() const
{
    return _config.linkGBps * 1e9 * static_cast<double>(_config.links);
}

void
HmcStack::harvestEnergy()
{
    for (auto &vault : _vaults) {
        for (std::uint32_t b = 0; b < vault->bankCount(); ++b) {
            _energy.addBankActivity(vault->bank(b).counters(),
                                    _timing.burstBytes);
        }
    }
    if (auto *registry = hpim::obs::MetricsRegistry::current()) {
        std::uint64_t activates = 0;
        std::uint64_t refreshes = 0;
        for (auto &vault : _vaults) {
            refreshes += vault->stats().refreshRounds;
            for (std::uint32_t b = 0; b < vault->bankCount(); ++b)
                activates += vault->bank(b).counters().activates;
        }
        registry->gauge("mem." + name() + ".bank_activates")
            .set(static_cast<double>(activates));
        registry->gauge("mem." + name() + ".refresh_rounds")
            .set(static_cast<double>(refreshes));
    }
}

VaultController &
HmcStack::vault(std::uint32_t i)
{
    panic_if(i >= _vaults.size(), "vault index ", i, " out of range");
    return *_vaults[i];
}

const VaultController &
HmcStack::vault(std::uint32_t i) const
{
    panic_if(i >= _vaults.size(), "vault index ", i, " out of range");
    return *_vaults[i];
}

} // namespace hpim::mem
