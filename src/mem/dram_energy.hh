/**
 * @file
 * DRAM access energy model.
 *
 * Distinguishes energy for accesses served *inside* the stack (PIM) from
 * accesses crossing the off-stack link (host), which is the root of the
 * PIM energy advantage the paper exploits. Per-command energies are in
 * picojoules; derived per-byte figures follow public HMC/DDR literature.
 */

#ifndef HPIM_MEM_DRAM_ENERGY_HH
#define HPIM_MEM_DRAM_ENERGY_HH

#include <cstdint>

#include "mem/bank.hh"

namespace hpim::mem {

/** Energy parameters for one memory technology instance. */
struct DramEnergyParams
{
    double actPrePj;       ///< one ACT+PRE pair, pJ
    double readPerBytePj;  ///< array read, pJ/byte
    double writePerBytePj; ///< array write, pJ/byte
    double linkPerBytePj;  ///< off-stack SerDes/IO, pJ/byte
    double backgroundW;    ///< standby + refresh power, watts

    /** HMC-like stack: cheap internal access, expensive link. */
    static DramEnergyParams hmc();
    /** DDR4 DIMM: everything crosses the channel I/O. */
    static DramEnergyParams ddr4();
};

/** Accumulates DRAM energy from command counts. */
class DramEnergyModel
{
  public:
    explicit DramEnergyModel(const DramEnergyParams &params)
        : _params(params)
    {}

    /** Account for the commands recorded in @p counters. */
    void addBankActivity(const BankCounters &counters,
                         std::uint32_t burst_bytes);

    /** Account for bytes that crossed the off-stack link. */
    void addLinkTraffic(std::uint64_t bytes);

    /** Account for elapsed wall time (background power). */
    void addBackgroundTime(double seconds);

    /** @return accumulated dynamic array energy in joules. */
    double arrayEnergyJ() const { return _array_pj * 1e-12; }
    /** @return accumulated link energy in joules. */
    double linkEnergyJ() const { return _link_pj * 1e-12; }
    /** @return accumulated background energy in joules. */
    double backgroundEnergyJ() const { return _background_j; }
    /** @return total energy in joules. */
    double totalEnergyJ() const
    { return arrayEnergyJ() + linkEnergyJ() + backgroundEnergyJ(); }

    const DramEnergyParams &params() const { return _params; }

  private:
    DramEnergyParams _params;
    double _array_pj = 0.0;
    double _link_pj = 0.0;
    double _background_j = 0.0;
};

} // namespace hpim::mem

#endif // HPIM_MEM_DRAM_ENERGY_HH
