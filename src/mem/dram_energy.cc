#include "mem/dram_energy.hh"

namespace hpim::mem {

DramEnergyParams
DramEnergyParams::hmc()
{
    DramEnergyParams p{};
    // In-stack array access is ~3.7 pJ/bit class; the SerDes link
    // dominates external access cost (HMC literature).
    p.actPrePj = 900.0;
    p.readPerBytePj = 4.0;
    p.writePerBytePj = 4.4;
    p.linkPerBytePj = 30.0;
    p.backgroundW = 1.2;
    return p;
}

DramEnergyParams
DramEnergyParams::ddr4()
{
    DramEnergyParams p{};
    // DDR4 channel: array + I/O together land around 10-20 pJ/bit.
    p.actPrePj = 1400.0;
    p.readPerBytePj = 6.0;
    p.writePerBytePj = 6.6;
    p.linkPerBytePj = 56.0;
    p.backgroundW = 1.0;
    return p;
}

void
DramEnergyModel::addBankActivity(const BankCounters &counters,
                                 std::uint32_t burst_bytes)
{
    _array_pj += static_cast<double>(counters.activates) * _params.actPrePj;
    _array_pj += static_cast<double>(counters.reads)
                 * static_cast<double>(burst_bytes) * _params.readPerBytePj;
    _array_pj += static_cast<double>(counters.writes)
                 * static_cast<double>(burst_bytes)
                 * _params.writePerBytePj;
}

void
DramEnergyModel::addLinkTraffic(std::uint64_t bytes)
{
    _link_pj += static_cast<double>(bytes) * _params.linkPerBytePj;
}

void
DramEnergyModel::addBackgroundTime(double seconds)
{
    _background_j += seconds * _params.backgroundW;
}

} // namespace hpim::mem
