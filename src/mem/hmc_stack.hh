/**
 * @file
 * The 3D die-stacked memory cube (HMC-2.0-like).
 *
 * Thirty-two vertical bank slices ("banks" in the paper's Fig. 3 sense,
 * vaults here), each with its own controller and DRAM banks, behind
 * external serial links. Exposes:
 *  - request-level simulation (enqueue / drainAll) for detailed studies,
 *  - aggregate bandwidth figures consumed by the roofline device models,
 *  - the energy model split into internal vs link components.
 */

#ifndef HPIM_MEM_HMC_STACK_HH
#define HPIM_MEM_HMC_STACK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/address_mapping.hh"
#include "mem/dram_energy.hh"
#include "mem/dram_timing.hh"
#include "mem/vault_controller.hh"
#include "sim/named.hh"

namespace hpim::mem {

/** Construction parameters for the stack. */
struct HmcConfig
{
    std::uint32_t vaults = 32;     ///< vertical slices (paper: 32)
    std::uint32_t banksPerVault = 8;
    std::uint32_t rowsPerBank = 16384;
    std::uint32_t rowBytes = 256;
    std::uint32_t links = 4;       ///< external serial links
    double linkGBps = 30.0;        ///< per-link full-duplex GB/s
    double frequencyScale = 1.0;   ///< PLL multiplier (Fig. 11/17)
    Interleave interleave = Interleave::RoBaVaCo;
    SchedulingPolicy policy = SchedulingPolicy::FRFCFS;
};

/** The memory cube. */
class HmcStack : public hpim::sim::Named
{
  public:
    explicit HmcStack(const HmcConfig &config,
                      const std::string &name = "hmc");

    /** Queue one request (decomposed by the internal address map). */
    void enqueue(const MemoryRequest &req);

    /**
     * Drain all vault queues.
     * @return all requests with completion times filled in.
     */
    std::vector<MemoryRequest> drainAll();

    /** @return peak internal bandwidth across all vaults, bytes/s. */
    double peakInternalBandwidth() const;

    /** @return peak external link bandwidth, bytes/s. */
    double peakExternalBandwidth() const;

    /** @return per-vault peak bandwidth, bytes/s. */
    double perVaultBandwidth() const;

    /** Fold all bank command counters into the energy model. */
    void harvestEnergy();

    const HmcConfig &config() const { return _config; }
    const AddressMapping &mapping() const { return _mapping; }
    const DramTiming &timing() const { return _timing; }
    DramEnergyModel &energy() { return _energy; }
    const DramEnergyModel &energy() const { return _energy; }
    VaultController &vault(std::uint32_t i);
    const VaultController &vault(std::uint32_t i) const;
    std::uint32_t vaultCount() const
    { return static_cast<std::uint32_t>(_vaults.size()); }

    /** Total capacity in bytes. */
    std::uint64_t capacity() const { return _mapping.capacity(); }

  private:
    HmcConfig _config;
    DramTiming _timing;
    AddressMapping _mapping;
    std::vector<std::unique_ptr<VaultController>> _vaults;
    DramEnergyModel _energy;
};

} // namespace hpim::mem

#endif // HPIM_MEM_HMC_STACK_HH
