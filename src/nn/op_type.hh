/**
 * @file
 * The operation taxonomy for NN training workloads.
 *
 * Mirrors the TensorFlow-level operations the paper profiles (Table I)
 * and the four-class taxonomy of Fig. 2. Each type carries traits that
 * drive offload decisions:
 *  - pure multiply/add ops can run entirely on fixed-function PIMs;
 *  - complex ops (Conv2DBackpropFilter, ...) have an extractable
 *    multiply/add portion that recursive PIM kernels offload;
 *  - special ops (Relu, MaxPool, ApplyAdam, ...) need the programmable
 *    PIM or the CPU.
 */

#ifndef HPIM_NN_OP_TYPE_HH
#define HPIM_NN_OP_TYPE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hpim::nn {

/** TensorFlow-flavoured operation types. */
enum class OpType : std::uint8_t
{
    // Pure multiply/add (fully fixed-function offloadable).
    MatMul,
    Conv2D,
    Mul,
    Add,
    Sub,
    BiasAdd,
    // Complex compute: multiply/add core + control logic.
    Conv2DBackpropFilter,
    Conv2DBackpropInput,
    MatMulGradWeights,
    MatMulGradInputs,
    BiasAddGrad,
    LstmCell,
    LstmCellGrad,
    BatchNorm,
    BatchNormGrad,
    // Special / conditional ops (programmable PIM or CPU).
    Relu,
    ReluGrad,
    MaxPool,
    MaxPoolGrad,
    AvgPool,
    AvgPoolGrad,
    Softmax,
    SoftmaxGrad,
    ApplyAdam,
    Dropout,
    DropoutGrad,
    Tanh,
    Sigmoid,
    EmbeddingLookup,
    EmbeddingGrad,
    NceLoss,
    // Data movement / bookkeeping.
    Slice,
    Concat,
    Reshape,
    Transpose,
    Pad,
    // Plain stochastic-gradient-descent update (GradPIM-style
    // optimizer-heavy workloads). Appended at the end: signature()
    // hashes the numeric enum value, so inserting mid-enum would
    // silently re-key every memoized graph.
    ApplySgd,

    NumOpTypes
};

/** Number of distinct op types. */
constexpr std::size_t numOpTypes =
    static_cast<std::size_t>(OpType::NumOpTypes);

/** Device-offload capability class of an op type. */
enum class OffloadClass : std::uint8_t
{
    /** Entirely multiply/add: runs on fixed-function PIMs alone. */
    FixedFunction,
    /** Mul/add core + control: programmable PIM w/ recursive fixed
     *  kernels (paper Fig. 6). */
    Recursive,
    /** Conditional/special math: programmable PIM or CPU only. */
    ProgrammableOnly,
    /** Pure data movement: cheapest near memory, no FP compute. */
    DataMovement,
};

/** Static traits of an op type. */
struct OpTraits
{
    const char *name;
    OffloadClass offloadClass;
    /**
     * Fraction of the op's dynamic work that is NOT plain multiply/add
     * (comparisons, exp/log, RNG, ...). For Recursive ops this part
     * stays on the programmable PIM; for FixedFunction ops it is 0.
     */
    double specialFraction;
};

/** @return the traits for @p type. */
const OpTraits &opTraits(OpType type);

/** @return the OpType whose wire/profiler name is @p name, or
 *  nullopt for an unknown name (the GraphIo loader's reverse map). */
std::optional<OpType> opTypeFromName(std::string_view name);

/** @return the TensorFlow-style op name. */
inline std::string
opName(OpType type)
{
    return opTraits(type).name;
}

/** @return true if the entire op may run on fixed-function PIMs. */
inline bool
fullyFixedOffloadable(OpType type)
{
    return opTraits(type).offloadClass == OffloadClass::FixedFunction;
}

/** @return true if the op has an extractable fixed-function portion. */
inline bool
hasFixedPortion(OpType type)
{
    auto cls = opTraits(type).offloadClass;
    return cls == OffloadClass::FixedFunction
           || cls == OffloadClass::Recursive;
}

} // namespace hpim::nn

#endif // HPIM_NN_OP_TYPE_HH
