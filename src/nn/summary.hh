/**
 * @file
 * Graph inspection utilities: per-type summaries (a model.summary()
 * equivalent at the op level) and Graphviz export for visualizing
 * training-step DAGs.
 */

#ifndef HPIM_NN_SUMMARY_HH
#define HPIM_NN_SUMMARY_HH

#include <ostream>
#include <string>
#include <vector>

#include "nn/graph.hh"

namespace hpim::nn {

/** One row of a graph summary. */
struct SummaryRow
{
    OpType type;
    std::size_t invocations = 0;
    double gflops = 0.0;
    double gbytes = 0.0;
    double flopsPct = 0.0;
};

/** Aggregated per-op-type view of a step graph. */
struct GraphSummary
{
    std::string name;
    std::size_t ops = 0;
    std::size_t criticalPath = 0;
    double totalGflops = 0.0;
    double totalGbytes = 0.0;
    std::vector<SummaryRow> rows; ///< descending by gflops

    /** Render as an aligned text table. */
    void print(std::ostream &os) const;
};

/** @return the summary of @p graph. */
GraphSummary summarize(const Graph &graph);

/**
 * Write @p graph as a Graphviz dot document. Nodes are colored by
 * offload class (fixed-function / recursive / programmable / data
 * movement). Large graphs are fine: one node per op.
 */
void exportDot(const Graph &graph, std::ostream &os);

} // namespace hpim::nn

#endif // HPIM_NN_SUMMARY_HH
