#include "nn/graph_io.hh"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "harness/json.hh"
#include "harness/json_writer.hh"

namespace hpim::nn {

namespace {

using harness::json::Value;

/** The field names of one serialized op, in emission order. */
constexpr const char *kOpFields[] = {
    "type",       "label",          "muls",
    "adds",       "specials",       "bytes_read",
    "bytes_written", "units_per_lane", "lanes",
};

std::string
opField(std::size_t index, const char *name)
{
    return "ops[" + std::to_string(index) + "]." + name;
}

/** Reject duplicate and unknown keys; require the known set. */
void
checkObjectKeys(const Value &object, std::size_t index, bool is_op)
{
    auto known = [&](const std::string &key) {
        if (!is_op)
            return key == "schema_version" || key == "name"
                   || key == "ops";
        if (key == "inputs")
            return true;
        for (const char *name : kOpFields)
            if (key == name)
                return true;
        return false;
    };
    auto path = [&](const std::string &key) {
        return is_op ? opField(index, key.c_str()) : key;
    };
    for (std::size_t i = 0; i < object.object.size(); ++i) {
        const std::string &key = object.object[i].first;
        if (!known(key))
            throw GraphParseError("unknown field",
                                  object.object[i].second.line,
                                  path(key));
        for (std::size_t j = i + 1; j < object.object.size(); ++j)
            if (object.object[j].first == key)
                throw GraphParseError("duplicate field",
                                      object.object[j].second.line,
                                      path(key));
    }
}

const Value &
requireField(const Value &object, const std::string &key,
             const std::string &path)
{
    const Value *found = object.find(key);
    if (!found)
        throw GraphParseError("missing field", object.line, path);
    return *found;
}

double
parseCost(const Value &object, std::size_t index, const char *name)
{
    std::string path = opField(index, name);
    const Value &field = requireField(object, name, path);
    if (!field.isNumber())
        throw GraphParseError("expected a number", field.line, path);
    double value = field.asDouble();
    if (!std::isfinite(value))
        throw GraphParseError("expected a finite number", field.line,
                              path);
    if (value < 0.0)
        throw GraphParseError("expected a non-negative number",
                              field.line, path);
    return value;
}

Operation
parseOp(const Value &node, std::size_t index)
{
    if (!node.isObject())
        throw GraphParseError("expected an object", node.line,
                              "ops[" + std::to_string(index) + "]");
    checkObjectKeys(node, index, /*is_op=*/true);

    Operation op;

    std::string type_path = opField(index, "type");
    const Value &type = requireField(node, "type", type_path);
    if (!type.isString())
        throw GraphParseError("expected a string", type.line,
                              type_path);
    auto resolved = opTypeFromName(type.asString());
    if (!resolved)
        throw GraphParseError("unknown op type '" + type.asString()
                                  + "'",
                              type.line, type_path);
    op.type = *resolved;

    std::string label_path = opField(index, "label");
    const Value &label = requireField(node, "label", label_path);
    if (!label.isString())
        throw GraphParseError("expected a string", label.line,
                              label_path);
    if (label.asString().empty())
        throw GraphParseError("expected a non-empty label", label.line,
                              label_path);
    op.label = label.asString();

    op.cost.muls = parseCost(node, index, "muls");
    op.cost.adds = parseCost(node, index, "adds");
    op.cost.specials = parseCost(node, index, "specials");
    op.cost.bytesRead = parseCost(node, index, "bytes_read");
    op.cost.bytesWritten = parseCost(node, index, "bytes_written");

    std::string units_path = opField(index, "units_per_lane");
    const Value &units = requireField(node, "units_per_lane",
                                      units_path);
    if (!units.isNumber())
        throw GraphParseError("expected a number", units.line,
                              units_path);
    std::uint64_t units_value;
    try {
        units_value = units.asUInt64();
    } catch (const harness::json::Error &) {
        throw GraphParseError("expected a non-negative integer",
                              units.line, units_path);
    }
    if (units_value > std::numeric_limits<std::uint32_t>::max())
        throw GraphParseError("value out of 32-bit range", units.line,
                              units_path);
    op.parallelism.unitsPerLane =
        static_cast<std::uint32_t>(units_value);

    op.parallelism.lanes = parseCost(node, index, "lanes");

    std::string inputs_path = opField(index, "inputs");
    const Value &inputs = requireField(node, "inputs", inputs_path);
    if (!inputs.isArray())
        throw GraphParseError("expected an array", inputs.line,
                              inputs_path);
    for (const Value &dep : inputs.array) {
        if (!dep.isNumber())
            throw GraphParseError("expected an op index", dep.line,
                                  inputs_path);
        std::uint64_t dep_value;
        try {
            dep_value = dep.asUInt64();
        } catch (const harness::json::Error &) {
            throw GraphParseError("expected a non-negative op index",
                                  dep.line, inputs_path);
        }
        if (dep_value >= index)
            throw GraphParseError(
                "input " + std::to_string(dep_value)
                    + " does not precede op "
                    + std::to_string(index)
                    + " (ops must be topologically ordered)",
                dep.line, inputs_path);
        op.inputs.push_back(static_cast<OpId>(dep_value));
    }
    return op;
}

} // namespace

void
saveGraph(std::ostream &os, const Graph &graph)
{
    harness::json::Writer w(os);
    w.beginObject();
    w.field("schema_version",
            static_cast<std::int64_t>(graphSchemaVersion));
    w.field("name", graph.name());
    w.key("ops").beginArray();
    for (const Operation &op : graph.ops()) {
        w.beginObject();
        w.field("type", opName(op.type));
        w.field("label", op.label);
        w.field("muls", op.cost.muls);
        w.field("adds", op.cost.adds);
        w.field("specials", op.cost.specials);
        w.field("bytes_read", op.cost.bytesRead);
        w.field("bytes_written", op.cost.bytesWritten);
        w.field("units_per_lane", op.parallelism.unitsPerLane);
        w.field("lanes", op.parallelism.lanes);
        w.key("inputs").beginArray();
        for (OpId dep : op.inputs)
            w.value(dep);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
graphToJson(const Graph &graph)
{
    std::ostringstream os;
    saveGraph(os, graph);
    return os.str();
}

Graph
loadGraph(const std::string &text)
{
    Value root;
    try {
        root = harness::json::parse(text);
    } catch (const harness::json::Error &err) {
        throw GraphParseError(err.what(), err.line);
    }

    if (!root.isObject())
        throw GraphParseError("expected a graph object", root.line);
    checkObjectKeys(root, 0, /*is_op=*/false);

    const Value &version = requireField(root, "schema_version",
                                        "schema_version");
    std::int64_t version_value;
    try {
        version_value = version.asInt64();
    } catch (const harness::json::Error &) {
        throw GraphParseError("expected an integer", version.line,
                              "schema_version");
    }
    if (version_value != graphSchemaVersion)
        throw GraphParseError(
            "unsupported schema version "
                + std::to_string(version_value) + " (expected "
                + std::to_string(graphSchemaVersion) + ")",
            version.line, "schema_version");

    const Value &name = requireField(root, "name", "name");
    if (!name.isString())
        throw GraphParseError("expected a string", name.line, "name");
    if (name.asString().empty())
        throw GraphParseError("expected a non-empty graph name",
                              name.line, "name");

    const Value &ops = requireField(root, "ops", "ops");
    if (!ops.isArray())
        throw GraphParseError("expected an array", ops.line, "ops");
    if (ops.array.empty())
        throw GraphParseError("expected at least one op", ops.line,
                              "ops");
    if (ops.array.size() >= static_cast<std::size_t>(invalidOp))
        throw GraphParseError("too many ops", ops.line, "ops");

    Graph graph(name.asString());
    for (std::size_t i = 0; i < ops.array.size(); ++i) {
        Operation op = parseOp(ops.array[i], i);
        graph.add(op.type, std::move(op.label), op.cost,
                  op.parallelism, std::move(op.inputs));
    }
    return graph;
}

Graph
loadGraphFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw GraphParseError("cannot open graph file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        throw GraphParseError("cannot read graph file '" + path + "'");
    try {
        return loadGraph(text.str());
    } catch (const GraphParseError &err) {
        throw GraphParseError::inFile(err, path);
    }
}

void
saveGraphFile(const std::string &path, const Graph &graph)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw GraphParseError("cannot open graph file '" + path
                              + "' for writing");
    saveGraph(out, graph);
    out << '\n';
    out.flush();
    if (!out)
        throw GraphParseError("cannot write graph file '" + path + "'");
}

} // namespace hpim::nn
