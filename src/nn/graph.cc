#include "nn/graph.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hpim::nn {

OpId
Graph::add(OpType type, std::string label, CostStructure cost,
           FixedParallelism parallelism, std::vector<OpId> inputs)
{
    OpId id = static_cast<OpId>(_ops.size());
    for (OpId in : inputs) {
        fatal_if(in >= id, "op '", label, "' depends on op ", in,
                 " which does not precede it");
    }

    Operation op;
    op.id = id;
    op.type = type;
    op.label = std::move(label);
    op.cost = cost;
    op.parallelism = parallelism;
    op.inputs = std::move(inputs);

    _consumers.emplace_back();
    for (OpId in : op.inputs)
        _consumers[in].push_back(id);

    // Fold this op into the structural signature (see graph.hh).
    using hpim::sim::hashDouble;
    using hpim::sim::hashString;
    using hpim::sim::hashU64;
    std::uint64_t h = hashU64(static_cast<std::uint64_t>(type),
                              _signature);
    h = hashString(op.label, h);
    h = hashDouble(cost.muls, h);
    h = hashDouble(cost.adds, h);
    h = hashDouble(cost.specials, h);
    h = hashDouble(cost.bytesRead, h);
    h = hashDouble(cost.bytesWritten, h);
    h = hashU64(parallelism.unitsPerLane, h);
    h = hashDouble(parallelism.lanes, h);
    for (OpId in : op.inputs)
        h = hashU64(in, h);
    _signature = h;

    // Position-independent per-op digest: everything that determines
    // the op's cost on any device model (type, cost fields, fixed
    // parallelism) and nothing that merely locates or names it
    // (label, id, inputs). Delta-evaluation keys on it (graph.hh).
    std::uint64_t op_sig = hashU64(static_cast<std::uint64_t>(type));
    op_sig = hashDouble(cost.muls, op_sig);
    op_sig = hashDouble(cost.adds, op_sig);
    op_sig = hashDouble(cost.specials, op_sig);
    op_sig = hashDouble(cost.bytesRead, op_sig);
    op_sig = hashDouble(cost.bytesWritten, op_sig);
    op_sig = hashU64(parallelism.unitsPerLane, op_sig);
    op_sig = hashDouble(parallelism.lanes, op_sig);
    _op_signatures.push_back(op_sig);

    // Input-cone digest: the op's own digest folded with each input's
    // cone digest, in input order. Inputs precede their consumers, so
    // one incremental pass suffices.
    std::uint64_t sub_sig = hashU64(op_sig);
    for (OpId in : op.inputs)
        sub_sig = hashU64(_subtree_signatures[in], sub_sig);
    _subtree_signatures.push_back(sub_sig);

    _ops.push_back(std::move(op));
    return id;
}

std::size_t
Graph::checkedIndex(OpId id) const
{
    panic_if(id >= _ops.size(), "op id ", id, " out of range");
    return id;
}

const Operation &
Graph::op(OpId id) const
{
    panic_if(id >= _ops.size(), "op id ", id, " out of range");
    return _ops[id];
}

std::vector<OpId>
Graph::topoOrder() const
{
    std::vector<OpId> order(_ops.size());
    for (OpId i = 0; i < _ops.size(); ++i)
        order[i] = i;
    return order;
}

std::vector<OpId>
Graph::readyOps(const std::vector<bool> &done) const
{
    panic_if(done.size() != _ops.size(), "done vector size mismatch");
    std::vector<OpId> ready;
    for (const Operation &op : _ops) {
        if (done[op.id])
            continue;
        bool all_in = std::all_of(
            op.inputs.begin(), op.inputs.end(),
            [&done](OpId in) { return done[in]; });
        if (all_in)
            ready.push_back(op.id);
    }
    return ready;
}

CostStructure
Graph::totalCost() const
{
    CostStructure total;
    for (const Operation &op : _ops)
        total += op.cost;
    return total;
}

std::size_t
Graph::countType(OpType type) const
{
    return static_cast<std::size_t>(
        std::count_if(_ops.begin(), _ops.end(),
                      [type](const Operation &o) {
                          return o.type == type;
                      }));
}

std::size_t
Graph::criticalPathLength() const
{
    std::vector<std::size_t> depth(_ops.size(), 1);
    std::size_t longest = _ops.empty() ? 0 : 1;
    for (const Operation &op : _ops) {
        for (OpId in : op.inputs)
            depth[op.id] = std::max(depth[op.id], depth[in] + 1);
        longest = std::max(longest, depth[op.id]);
    }
    return longest;
}

} // namespace hpim::nn
