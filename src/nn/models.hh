/**
 * @file
 * Training-step graphs of the paper's seven evaluation workloads
 * (SectionV-C), with the paper's default batch sizes.
 */

#ifndef HPIM_NN_MODELS_HH
#define HPIM_NN_MODELS_HH

#include <string>
#include <vector>

#include "nn/graph.hh"

namespace hpim::nn {

/** The evaluated workloads. */
enum class ModelId
{
    Vgg19,
    AlexNet,
    Dcgan,
    ResNet50,
    InceptionV3,
    Lstm,
    Word2vec,
};

/** @return the paper's default batch size for @p model (SectionV-C). */
int defaultBatchSize(ModelId model);

/** @return the human-readable model name. */
std::string modelName(ModelId model);

/** Build one training step of @p model; batch <= 0 uses the default. */
Graph buildModel(ModelId model, int batch = 0);

/** VGG-19 on ImageNet-sized inputs (batch 32). */
Graph buildVgg19(int batch = 32);

/** AlexNet on ImageNet-sized inputs (batch 32). */
Graph buildAlexNet(int batch = 32);

/** DCGAN generator+discriminator step on MNIST (batch 64). */
Graph buildDcgan(int batch = 64);

/** ResNet-50 (batch 128). */
Graph buildResNet50(int batch = 128);

/** Inception-v3 (batch 32). */
Graph buildInceptionV3(int batch = 32);

/** 2-layer LSTM language model on PTB (batch 20). */
Graph buildLstm(int batch = 20);

/** Word2vec skip-gram with NCE loss (batch 128). */
Graph buildWord2vec(int batch = 128);

/** The five CNN models of the main evaluation (Figs. 8-15, 17). */
std::vector<ModelId> cnnModels();

/** All seven workloads. */
std::vector<ModelId> allModels();

} // namespace hpim::nn

#endif // HPIM_NN_MODELS_HH
