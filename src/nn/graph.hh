/**
 * @file
 * The training-step operation graph (DAG).
 *
 * One Graph describes a single training step: every operation instance
 * with its cost structure, fixed-function parallelism and dependences.
 * The runtime replays the same graph for every step (paper SectionIII-C:
 * "all steps almost have the same classes of operations").
 */

#ifndef HPIM_NN_GRAPH_HH
#define HPIM_NN_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/op_cost.hh"
#include "nn/op_type.hh"
#include "sim/hash.hh"

namespace hpim::nn {

/** Stable identifier of an operation within its graph. */
using OpId = std::uint32_t;

/** Sentinel for "no op". */
constexpr OpId invalidOp = ~OpId(0);

/** One operation instance in a training step. */
struct Operation
{
    OpId id = invalidOp;
    OpType type = OpType::MatMul;
    std::string label;          ///< human-readable, e.g. "conv3_2/fprop"
    CostStructure cost;
    FixedParallelism parallelism;
    std::vector<OpId> inputs;   ///< producer op ids

    /** Work (flops) that can execute on fixed-function PIMs. */
    double
    fixedWork() const
    {
        return hasFixedPortion(type) ? cost.flops() : 0.0;
    }

    /** Work that must run on a programmable device. */
    double specialWork() const { return cost.specials; }
};

/** A training-step DAG. */
class Graph
{
  public:
    explicit Graph(std::string name)
        : _name(std::move(name)),
          _signature(hpim::sim::hashString(_name))
    {}

    /**
     * Append an operation.
     * @return its id (ids are dense, insertion ordered)
     */
    OpId add(OpType type, std::string label, CostStructure cost,
             FixedParallelism parallelism,
             std::vector<OpId> inputs = {});

    const Operation &op(OpId id) const;
    std::size_t size() const { return _ops.size(); }
    const std::vector<Operation> &ops() const { return _ops; }
    const std::string &name() const { return _name; }

    /** Consumers of each op (reverse adjacency). */
    const std::vector<std::vector<OpId>> &consumers() const
    { return _consumers; }

    /**
     * @return ids in a valid topological order.
     * Since inputs must precede their consumers at add() time, the
     * insertion order is already topological; this validates it.
     */
    std::vector<OpId> topoOrder() const;

    /** @return ops with no unfinished producers given @p done flags. */
    std::vector<OpId> readyOps(const std::vector<bool> &done) const;

    /** Sum of all op costs. */
    CostStructure totalCost() const;

    /** Number of ops of the given type. */
    std::size_t countType(OpType type) const;

    /** Longest path length (in ops) -- a depth/parallelism measure. */
    std::size_t criticalPathLength() const;

    /**
     * Deterministic structural digest over the name and every op
     * (type, label, cost, parallelism, inputs), folded incrementally
     * by add(). Two graphs with equal signatures went through the
     * same construction; sim::MemoCache keys on it.
     */
    std::uint64_t signature() const { return _signature; }

    /**
     * Position-independent digest of one op: type, cost structure
     * (bit patterns) and fixed parallelism -- *not* the label, id or
     * inputs. Two ops with equal opSignature() cost exactly the same
     * on any device model, wherever they sit in whichever graph, so
     * per-op profile/model results memoize on it (the delta-evaluation
     * sub-key tier, docs/PERFORMANCE.md). Computed by add().
     */
    std::uint64_t
    opSignature(OpId id) const
    {
        return _op_signatures[checkedIndex(id)];
    }

    /**
     * Digest of the op's whole input cone: its opSignature() folded
     * with the subtreeSignature() of every input, in input order.
     * Equal subtree signatures mean structurally identical sub-graphs
     * feeding structurally identical ops -- the key for memoizing
     * cone-dependent results. Labels and absolute ids do not
     * participate, so a repeated block (e.g. a transformer layer)
     * hashes equal at every repetition. Computed by add().
     */
    std::uint64_t
    subtreeSignature(OpId id) const
    {
        return _subtree_signatures[checkedIndex(id)];
    }

  private:
    /** Bounds-checked id -> index (panics on a foreign id). */
    std::size_t checkedIndex(OpId id) const;

    std::string _name;
    std::vector<Operation> _ops;
    std::vector<std::vector<OpId>> _consumers;
    std::uint64_t _signature;
    std::vector<std::uint64_t> _op_signatures;
    std::vector<std::uint64_t> _subtree_signatures;
};

} // namespace hpim::nn

#endif // HPIM_NN_GRAPH_HH
