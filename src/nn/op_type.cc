#include "nn/op_type.hh"

#include <array>

#include "sim/logging.hh"

namespace hpim::nn {

namespace {

constexpr std::array<OpTraits, numOpTypes> kTraits = {{
    // name,                     class,                          special
    {"MatMul",               OffloadClass::FixedFunction,    0.00},
    {"Conv2D",               OffloadClass::FixedFunction,    0.00},
    {"Mul",                  OffloadClass::FixedFunction,    0.00},
    {"Add",                  OffloadClass::FixedFunction,    0.00},
    {"Sub",                  OffloadClass::FixedFunction,    0.00},
    {"BiasAdd",              OffloadClass::FixedFunction,    0.00},
    // The special fraction of Recursive ops is the *control* work
    // (phases 1/2 of paper Fig. 6: index setup, accumulation control)
    // that stays on the programmable device; the bulk mul/add core is
    // extracted into recursive fixed-function kernels.
    {"Conv2DBackpropFilter", OffloadClass::Recursive,        0.010},
    {"Conv2DBackpropInput",  OffloadClass::Recursive,        0.008},
    {"MatMulGradWeights",    OffloadClass::Recursive,        0.010},
    {"MatMulGradInputs",     OffloadClass::Recursive,        0.010},
    {"BiasAddGrad",          OffloadClass::Recursive,        0.020},
    {"LSTMCell",             OffloadClass::Recursive,        0.080},
    {"LSTMCellGrad",         OffloadClass::Recursive,        0.100},
    {"BatchNorm",            OffloadClass::Recursive,        0.100},
    {"BatchNormGrad",        OffloadClass::Recursive,        0.120},
    {"Relu",                 OffloadClass::ProgrammableOnly, 1.00},
    {"ReluGrad",             OffloadClass::ProgrammableOnly, 1.00},
    {"MaxPool",              OffloadClass::ProgrammableOnly, 1.00},
    {"MaxPoolGrad",          OffloadClass::ProgrammableOnly, 1.00},
    {"AvgPool",              OffloadClass::ProgrammableOnly, 0.50},
    {"AvgPoolGrad",          OffloadClass::ProgrammableOnly, 0.50},
    {"Softmax",              OffloadClass::ProgrammableOnly, 0.80},
    {"SoftmaxGrad",          OffloadClass::ProgrammableOnly, 0.60},
    {"ApplyAdam",            OffloadClass::ProgrammableOnly, 0.55},
    {"Dropout",              OffloadClass::ProgrammableOnly, 0.90},
    {"DropoutGrad",          OffloadClass::ProgrammableOnly, 0.80},
    {"Tanh",                 OffloadClass::ProgrammableOnly, 1.00},
    {"Sigmoid",              OffloadClass::ProgrammableOnly, 1.00},
    {"EmbeddingLookup",      OffloadClass::ProgrammableOnly, 1.00},
    {"EmbeddingGrad",        OffloadClass::ProgrammableOnly, 0.80},
    {"NceLoss",              OffloadClass::ProgrammableOnly, 0.70},
    {"Slice",                OffloadClass::DataMovement,     1.00},
    {"Concat",               OffloadClass::DataMovement,     1.00},
    {"Reshape",              OffloadClass::DataMovement,     1.00},
    {"Transpose",            OffloadClass::DataMovement,     1.00},
    {"Pad",                  OffloadClass::DataMovement,     1.00},
    {"ApplySGD",             OffloadClass::ProgrammableOnly, 0.10},
}};

} // namespace

const OpTraits &
opTraits(OpType type)
{
    auto idx = static_cast<std::size_t>(type);
    panic_if(idx >= numOpTypes, "invalid op type ", idx);
    return kTraits[idx];
}

std::optional<OpType>
opTypeFromName(std::string_view name)
{
    for (std::size_t i = 0; i < numOpTypes; ++i) {
        if (name == kTraits[i].name)
            return static_cast<OpType>(i);
    }
    return std::nullopt;
}

} // namespace hpim::nn
