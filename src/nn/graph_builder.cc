#include "nn/graph_builder.hh"

#include <algorithm>
#include <atomic>
#include <map>

#include "sim/logging.hh"

namespace hpim::nn {

namespace {

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

std::uint64_t
nextBuilderId()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

Builder::Builder(std::string name)
    : _graph(std::move(name)), _id(nextBuilderId())
{
}

std::string
Builder::layerLabel(const char *base)
{
    return std::string(base) + "_" + std::to_string(++_misc_index);
}

const Builder::TensorEntry &
Builder::entry(TensorRef ref) const
{
    fatal_if(!ref.valid(),
             "use of an invalid (default-constructed) TensorRef");
    fatal_if(ref.owner != _id,
             "TensorRef belongs to a different Builder");
    fatal_if(ref.tid >= _tensors.size(), "TensorRef out of range");
    return _tensors[ref.tid];
}

TensorRef
Builder::newTensor(OpId op, TensorShape shape, std::int32_t record)
{
    fatal_if(_finished,
             "Builder already finished; no further ops may be added");
    TensorEntry e;
    e.op = op;
    e.shape = std::move(shape);
    e.record = record;
    _tensors.push_back(std::move(e));
    TensorRef ref;
    ref.tid = static_cast<std::uint32_t>(_tensors.size() - 1);
    ref.owner = _id;
    return ref;
}

std::vector<OpId>
Builder::depsOf(TensorRef ref) const
{
    OpId op = entry(ref).op;
    return op == invalidOp ? std::vector<OpId>{}
                           : std::vector<OpId>{op};
}

TensorRef
Builder::input(TensorShape shape)
{
    fatal_if(shape.rank() == 0, "graph inputs need a non-empty shape");
    return newTensor(invalidOp, std::move(shape), -1);
}

OpId
Builder::rawOp(OpType type, std::string label, CostStructure cost,
               FixedParallelism parallelism, std::vector<OpId> inputs)
{
    fatal_if(_finished,
             "Builder already finished; no further ops may be added");
    return _graph.add(type, std::move(label), cost, parallelism,
                      std::move(inputs));
}

const TensorShape &
Builder::shape(TensorRef ref) const
{
    return entry(ref).shape;
}

OpId
Builder::producer(TensorRef ref) const
{
    return entry(ref).op;
}

// ------------------------------------------------------- conv layers

TensorRef
Builder::conv2d(TensorRef x, std::int64_t k, std::int64_t c_out,
                std::int64_t stride, bool relu)
{
    const TensorShape &in = shape(x);
    fatal_if(in.rank() != 4, "conv needs an NHWC activation");
    fatal_if(k < 1 || c_out < 1 || stride < 1,
             "conv needs k >= 1, c_out >= 1, stride >= 1 (got k=", k,
             " c_out=", c_out, " stride=", stride, ")");
    TapeRecord rec;
    rec.kind = TapeKind::Conv;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.kH = rec.kW = k;
    rec.sH = rec.sW = stride;
    rec.cOut = c_out;
    rec.relu = relu;
    rec.label = "conv" + std::to_string(++_conv_index);
    rec.params = k * k * in.dim(3) * c_out + c_out;

    std::vector<OpId> deps = depsOf(x);
    CostStructure cost = conv2dCost(in, k, c_out, stride);
    std::int64_t reduction = k * k; // one spatial tap tree, paper-style
    TensorShape out{in.dim(0), ceilDiv(in.dim(1), stride),
                    ceilDiv(in.dim(2), stride), c_out};
    double lanes = static_cast<double>(out.elems());
    OpId conv_id = _graph.add(
        OpType::Conv2D, rec.label + "/Conv2D", cost,
        fixedParallelism(OpType::Conv2D, reduction, lanes), deps);

    OpId bias_id = _graph.add(
        OpType::BiasAdd, rec.label + "/BiasAdd",
        biasAddCost(out, c_out),
        fixedParallelism(OpType::BiasAdd, 1, double(out.elems())),
        {conv_id});

    rec.fwdOp = bias_id;
    OpId act = bias_id;
    if (relu) {
        act = _graph.add(OpType::Relu, rec.label + "/Relu",
                         activationCost(OpType::Relu, out),
                         fixedParallelism(OpType::Relu, 1, 0.0),
                         {bias_id});
        rec.actOp = act;
    }

    rec.outShape = out;
    TensorRef result =
        newTensor(act, out, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::deconv2d(TensorRef x, std::int64_t k, std::int64_t c_out,
                  std::int64_t up, bool relu)
{
    const TensorShape &in = shape(x);
    fatal_if(in.rank() != 4, "deconv needs an NHWC activation");
    fatal_if(k < 1 || c_out < 1 || up < 1,
             "deconv needs k >= 1, c_out >= 1, up >= 1 (got k=", k,
             " c_out=", c_out, " up=", up, ")");
    TapeRecord rec;
    rec.kind = TapeKind::Deconv;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.kH = rec.kW = k;
    rec.sH = rec.sW = up;
    rec.cOut = c_out;
    rec.relu = relu;
    rec.label = "deconv" + std::to_string(++_conv_index);
    rec.params = k * k * in.dim(3) * c_out + c_out;

    std::vector<OpId> deps = depsOf(x);
    TensorShape out{in.dim(0), in.dim(1) * up, in.dim(2) * up, c_out};
    // conv2d_transpose == Conv2DBackpropInput on the output geometry.
    CostStructure cost = conv2dBackpropInputCost(out, k, in.dim(3), up);
    OpId id = _graph.add(
        OpType::Conv2DBackpropInput, rec.label + "/Conv2DBackpropInput",
        cost,
        fixedParallelism(OpType::Conv2DBackpropInput, k * k,
                         double(out.elems())),
        deps);

    OpId bias_id = _graph.add(
        OpType::BiasAdd, rec.label + "/BiasAdd", biasAddCost(out, c_out),
        fixedParallelism(OpType::BiasAdd, 1, double(out.elems())), {id});

    rec.fwdOp = bias_id;
    OpId act = bias_id;
    if (relu) {
        act = _graph.add(OpType::Relu, rec.label + "/Relu",
                         activationCost(OpType::Relu, out),
                         fixedParallelism(OpType::Relu, 1, 0.0),
                         {bias_id});
        rec.actOp = act;
    }

    rec.outShape = out;
    TensorRef result =
        newTensor(act, out, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::pool(TensorRef x, TapeKind kind, std::int64_t kh,
              std::int64_t kw, std::int64_t sh, std::int64_t sw)
{
    const TensorShape &in = shape(x);
    fatal_if(in.rank() != 4, "pool needs an NHWC activation");
    fatal_if(kh < 1 || kw < 1 || sh < 1 || sw < 1,
             "pool needs window and strides >= 1 (got ", kh, "x", kw,
             " stride ", sh, "/", sw, ")");
    const bool square = kh == kw && sh == sw;
    const bool max = kind == TapeKind::MaxPool;
    TapeRecord rec;
    rec.kind = kind;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.kH = kh;
    rec.kW = kw;
    rec.sH = sh;
    rec.sW = sw;
    rec.label = layerLabel(max ? "maxpool" : "avgpool");

    OpType type = max ? OpType::MaxPool : OpType::AvgPool;
    // The square path keeps calling poolCost so CnnBuilder-built
    // graphs stay bit-for-bit identical.
    CostStructure cost = square ? poolCost(type, in, kh, sh)
                                : poolCost2d(type, in, kh, kw, sh, sw);
    OpId id = _graph.add(
        type, rec.label + (max ? "/MaxPool" : "/AvgPool"), cost,
        fixedParallelism(type, 1, 0.0), depsOf(x));
    rec.fwdOp = id;
    TensorShape out{in.dim(0), ceilDiv(in.dim(1), sh),
                    ceilDiv(in.dim(2), sw), in.dim(3)};
    rec.outShape = out;
    TensorRef result =
        newTensor(id, out, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::maxPool(TensorRef x, std::int64_t k, std::int64_t stride)
{
    return pool(x, TapeKind::MaxPool, k, k, stride, stride);
}

TensorRef
Builder::maxPool(TensorRef x, std::int64_t kh, std::int64_t kw,
                 std::int64_t sh, std::int64_t sw)
{
    return pool(x, TapeKind::MaxPool, kh, kw, sh, sw);
}

TensorRef
Builder::avgPool(TensorRef x, std::int64_t k, std::int64_t stride)
{
    return pool(x, TapeKind::AvgPool, k, k, stride, stride);
}

TensorRef
Builder::avgPool(TensorRef x, std::int64_t kh, std::int64_t kw,
                 std::int64_t sh, std::int64_t sw)
{
    return pool(x, TapeKind::AvgPool, kh, kw, sh, sw);
}

// ----------------------------------------------- dense / matmul layers

TensorRef
Builder::dense(TensorRef x, std::int64_t units, bool relu)
{
    const TensorShape &in = shape(x);
    fatal_if(in.rank() != 2,
             "dense needs a rank-2 activation (flatten() first), got ",
             in.str());
    fatal_if(units < 1, "dense needs units >= 1, got ", units);
    TapeRecord rec;
    rec.kind = TapeKind::Dense;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.cOut = units;
    rec.relu = relu;
    rec.label = "fc" + std::to_string(++_fc_index);
    std::int64_t in_dim = in.dim(1);
    rec.params = in_dim * units + units;

    OpId mm = _graph.add(
        OpType::MatMul, rec.label + "/MatMul",
        matmulCost(in.dim(0), in_dim, units),
        fixedParallelism(OpType::MatMul, std::min<std::int64_t>(in_dim, 64),
                         double(in.dim(0) * units)),
        depsOf(x));

    TensorShape out{in.dim(0), units};
    OpId bias_id = _graph.add(
        OpType::BiasAdd, rec.label + "/BiasAdd", biasAddCost(out, units),
        fixedParallelism(OpType::BiasAdd, 1, double(out.elems())), {mm});

    rec.fwdOp = bias_id;
    OpId act = bias_id;
    if (relu) {
        act = _graph.add(OpType::Relu, rec.label + "/Relu",
                         activationCost(OpType::Relu, out),
                         fixedParallelism(OpType::Relu, 1, 0.0),
                         {bias_id});
        rec.actOp = act;
    }
    rec.outShape = out;
    TensorRef result =
        newTensor(act, out, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::matmul(TensorRef a, TensorRef b)
{
    const TensorShape &sa = shape(a);
    const TensorShape &sb = shape(b);
    fatal_if(sa.rank() != 2 || sb.rank() != 2,
             "matmul needs rank-2 operands, got ", sa.str(), " x ",
             sb.str());
    fatal_if(sa.dim(1) != sb.dim(0),
             "matmul inner dims must agree, got ", sa.str(), " x ",
             sb.str());
    TapeRecord rec;
    rec.kind = TapeKind::MatMul2;
    rec.in0 = a.tid;
    rec.in1 = b.tid;
    rec.inShape = sa;
    rec.label = layerLabel("matmul");

    std::int64_t m = sa.dim(0), kk = sa.dim(1), n = sb.dim(1);
    std::vector<OpId> deps = depsOf(a);
    for (OpId d : depsOf(b))
        deps.push_back(d);
    OpId id = _graph.add(
        OpType::MatMul, rec.label + "/MatMul", matmulCost(m, kk, n),
        fixedParallelism(OpType::MatMul, std::min<std::int64_t>(kk, 64),
                         double(m * n)),
        deps);
    rec.fwdOp = id;
    TensorShape out{m, n};
    rec.outShape = out;
    TensorRef result =
        newTensor(id, out, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

// --------------------------------------------- normalization, movement

TensorRef
Builder::norm(TensorRef x, TapeKind kind, const char *base,
              const char *op_suffix)
{
    const TensorShape &in = shape(x);
    fatal_if(in.rank() == 0, "norm needs a shaped activation");
    TapeRecord rec;
    rec.kind = kind;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.outShape = in;
    rec.label = layerLabel(base);
    rec.params = 2 * in.dim(in.rank() - 1);

    OpId id = _graph.add(
        OpType::BatchNorm, rec.label + op_suffix,
        batchNormCost(OpType::BatchNorm, in),
        fixedParallelism(OpType::BatchNorm, 1, double(in.elems())),
        depsOf(x));
    rec.fwdOp = id;
    TensorRef result =
        newTensor(id, in, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::batchNorm(TensorRef x)
{
    return norm(x, TapeKind::BatchNorm, "bn", "/FusedBatchNorm");
}

TensorRef
Builder::layerNorm(TensorRef x)
{
    return norm(x, TapeKind::LayerNorm, "ln", "/LayerNorm");
}

TensorRef
Builder::dropout(TensorRef x)
{
    const TensorShape &in = shape(x);
    TapeRecord rec;
    rec.kind = TapeKind::Dropout;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.outShape = in;
    rec.label = layerLabel("dropout");

    OpId id = _graph.add(OpType::Dropout, rec.label + "/Dropout",
                         dropoutCost(OpType::Dropout, in),
                         fixedParallelism(OpType::Dropout, 1, 0.0),
                         depsOf(x));
    rec.fwdOp = id;
    TensorRef result =
        newTensor(id, in, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::flatten(TensorRef x)
{
    const TensorShape &in = shape(x);
    fatal_if(in.rank() == 0, "flatten needs a shaped activation");
    TapeRecord rec;
    rec.kind = TapeKind::Flatten;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.label = layerLabel("flatten");

    OpId id = _graph.add(
        OpType::Reshape, rec.label + "/Reshape",
        dataMovementCost(0.0), // metadata-only in TF
        fixedParallelism(OpType::Reshape, 1, 0.0), depsOf(x));
    rec.fwdOp = id;
    TensorShape out{in.dim(0), in.elems() / in.dim(0)};
    rec.outShape = out;
    TensorRef result =
        newTensor(id, out, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::transpose(TensorRef x)
{
    const TensorShape &in = shape(x);
    fatal_if(in.rank() != 2, "transpose needs a rank-2 activation, got ",
             in.str());
    TapeRecord rec;
    rec.kind = TapeKind::Transpose;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.label = layerLabel("transpose");

    OpId id = _graph.add(OpType::Transpose, rec.label + "/Transpose",
                         dataMovementCost(double(in.bytes())),
                         fixedParallelism(OpType::Transpose, 1, 0.0),
                         depsOf(x));
    rec.fwdOp = id;
    TensorShape out{in.dim(1), in.dim(0)};
    rec.outShape = out;
    TensorRef result =
        newTensor(id, out, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::slice(TensorRef x)
{
    const TensorShape &in = shape(x);
    TapeRecord rec;
    rec.kind = TapeKind::Slice;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.outShape = in;
    rec.label = layerLabel("slice");

    OpId id = _graph.add(OpType::Slice, rec.label + "/Slice",
                         dataMovementCost(double(in.bytes())),
                         fixedParallelism(OpType::Slice, 1, 0.0),
                         depsOf(x));
    rec.fwdOp = id;
    TensorRef result =
        newTensor(id, in, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::concat(TensorRef x)
{
    const TensorShape &in = shape(x);
    TapeRecord rec;
    rec.kind = TapeKind::Concat;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.outShape = in;
    rec.label = layerLabel("concat");

    OpId id = _graph.add(OpType::Concat, rec.label + "/Concat",
                         dataMovementCost(double(in.bytes())),
                         fixedParallelism(OpType::Concat, 1, 0.0),
                         depsOf(x));
    rec.fwdOp = id;
    TensorRef result =
        newTensor(id, in, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

// ---------------------------------------------------- elementwise ops

TensorRef
Builder::add(TensorRef a, TensorRef b)
{
    const TensorShape &sa = shape(a);
    fatal_if(!(sa == shape(b)), "add needs same-shaped operands, got ",
             sa.str(), " + ", shape(b).str());
    TapeRecord rec;
    rec.kind = TapeKind::Add2;
    rec.in0 = a.tid;
    rec.in1 = b.tid;
    rec.inShape = sa;
    rec.outShape = sa;
    rec.label = layerLabel("add");

    std::vector<OpId> deps = depsOf(a);
    for (OpId d : depsOf(b))
        deps.push_back(d);
    OpId id = _graph.add(
        OpType::Add, rec.label + "/Add", elementwiseCost(OpType::Add, sa),
        fixedParallelism(OpType::Add, 1, double(sa.elems())), deps);
    rec.fwdOp = id;
    TensorRef result =
        newTensor(id, sa, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::mul(TensorRef a, TensorRef b)
{
    const TensorShape &sa = shape(a);
    fatal_if(!(sa == shape(b)), "mul needs same-shaped operands, got ",
             sa.str(), " * ", shape(b).str());
    TapeRecord rec;
    rec.kind = TapeKind::Mul2;
    rec.in0 = a.tid;
    rec.in1 = b.tid;
    rec.inShape = sa;
    rec.outShape = sa;
    rec.label = layerLabel("mul");

    std::vector<OpId> deps = depsOf(a);
    for (OpId d : depsOf(b))
        deps.push_back(d);
    OpId id = _graph.add(
        OpType::Mul, rec.label + "/Mul", elementwiseCost(OpType::Mul, sa),
        fixedParallelism(OpType::Mul, 1, double(sa.elems())), deps);
    rec.fwdOp = id;
    TensorRef result =
        newTensor(id, sa, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::mulChain(TensorRef x)
{
    const TensorShape &in = shape(x);
    TapeRecord rec;
    rec.kind = TapeKind::MulChain;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.outShape = in;
    rec.label = layerLabel("mul");

    OpId id = _graph.add(
        OpType::Mul, rec.label + "/Mul", elementwiseCost(OpType::Mul, in),
        fixedParallelism(OpType::Mul, 1, double(in.elems())), depsOf(x));
    rec.fwdOp = id;
    TensorRef result =
        newTensor(id, in, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::activation(TensorRef x, TapeKind kind, OpType type,
                    const char *base)
{
    const TensorShape &in = shape(x);
    TapeRecord rec;
    rec.kind = kind;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.outShape = in;
    rec.label = layerLabel(base);

    OpId id = _graph.add(type, rec.label + "/" + opName(type),
                         activationCost(type, in),
                         fixedParallelism(type, 1, 0.0), depsOf(x));
    rec.fwdOp = id;
    TensorRef result =
        newTensor(id, in, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

TensorRef
Builder::relu(TensorRef x)
{
    return activation(x, TapeKind::Relu, OpType::Relu, "relu");
}

TensorRef
Builder::tanh(TensorRef x)
{
    return activation(x, TapeKind::Tanh, OpType::Tanh, "tanh");
}

TensorRef
Builder::sigmoid(TensorRef x)
{
    return activation(x, TapeKind::Sigmoid, OpType::Sigmoid, "sigmoid");
}

TensorRef
Builder::softmax(TensorRef x)
{
    const TensorShape &in = shape(x);
    fatal_if(in.rank() != 2, "softmax needs a rank-2 activation, got ",
             in.str());
    TapeRecord rec;
    rec.kind = TapeKind::Softmax;
    rec.in0 = x.tid;
    rec.inShape = in;
    rec.outShape = in;
    rec.label = layerLabel("softmax");

    OpId id = _graph.add(
        OpType::Softmax, rec.label + "/Softmax",
        softmaxCost(OpType::Softmax, in.dim(0), in.dim(1)),
        fixedParallelism(OpType::Softmax, 1, 0.0), depsOf(x));
    rec.fwdOp = id;
    TensorRef result =
        newTensor(id, in, static_cast<std::int32_t>(_tape.size()));
    rec.out = result.tid;
    _tape.push_back(std::move(rec));
    return result;
}

// -------------------------------------------------------- finishing

Graph
Builder::finishForward()
{
    fatal_if(_finished, "Builder already finished");
    _finished = true;
    return std::move(_graph);
}

void
Builder::emitOptimizer(Optimizer optimizer, const std::string &label,
                       std::int64_t params, OpId grad_op)
{
    if (optimizer == Optimizer::Adam) {
        _graph.add(OpType::ApplyAdam, label + "/ApplyAdam",
                   applyAdamCost(params),
                   fixedParallelism(OpType::ApplyAdam, 1, 0.0),
                   {grad_op});
    } else {
        _graph.add(OpType::ApplySgd, label + "/ApplySgd",
                   applySgdCost(params),
                   fixedParallelism(OpType::ApplySgd, 1, 0.0),
                   {grad_op});
    }
}

Graph
Builder::trainingStep(TensorRef logits, Optimizer optimizer,
                      std::size_t extra_loss_muls)
{
    fatal_if(_finished, "Builder already finished");
    fatal_if(_tape.empty(), "cannot finish an empty model");
    const TensorEntry &logits_entry = entry(logits);
    fatal_if(logits_entry.op == invalidOp,
             "cannot take the training loss over a graph input");

    // ---- Loss: softmax + grad over the final activation.
    const TensorShape &logits_shape = logits_entry.shape;
    std::int64_t batch = logits_shape.dim(0);
    std::int64_t classes = logits_shape.elems() / batch;
    OpId loss = _graph.add(
        OpType::Softmax, "loss/Softmax",
        softmaxCost(OpType::Softmax, batch, classes),
        fixedParallelism(OpType::Softmax, 1, 0.0), {logits_entry.op});

    // GAN-style losses spray many small Mul ops around the loss.
    OpId mul_tail = loss;
    TensorShape loss_shape{batch, classes};
    for (std::size_t i = 0; i < extra_loss_muls; ++i) {
        mul_tail = _graph.add(
            OpType::Mul, "loss/Mul_" + std::to_string(i),
            elementwiseCost(OpType::Mul, loss_shape),
            fixedParallelism(OpType::Mul, 1, double(loss_shape.elems())),
            {mul_tail});
    }

    OpId loss_grad = _graph.add(
        OpType::SoftmaxGrad, "loss/SoftmaxGrad",
        softmaxCost(OpType::SoftmaxGrad, batch, classes),
        fixedParallelism(OpType::SoftmaxGrad, 1, 0.0), {mul_tail});

    // ---- Reverse-mode tape walk. Contributions per tensor: a tape
    // record's consumers all sit later in the tape, so by the time the
    // walk reaches the producing record every contribution to its
    // output is present and can be combined.
    std::map<std::uint32_t, std::vector<OpId>> contributions;
    contributions[logits.tid].push_back(loss_grad);

    std::vector<OpId> grad_ops; // parameter-gradient producers
    std::vector<std::int64_t> grad_params;
    std::vector<std::string> grad_labels;

    // @return true when @p tid is produced by a tape record (a source
    // input needs no gradient op).
    auto produced = [this](std::uint32_t tid) {
        return _tensors[tid].record >= 0;
    };
    auto contribute = [&](std::uint32_t tid, OpId grad_op) {
        contributions[tid].push_back(grad_op);
    };

    for (auto it = _tape.rbegin(); it != _tape.rend(); ++it) {
        const TapeRecord &rec = *it;
        auto found = contributions.find(rec.out);
        if (found == contributions.end())
            continue; // not on the loss path; no gradient flows
        // Fan-out: sum the consumers' gradients pairwise.
        OpId grad = found->second.front();
        for (std::size_t i = 1; i < found->second.size(); ++i) {
            grad = _graph.add(
                OpType::Add,
                rec.label + "/AddGrad_" + std::to_string(i - 1),
                elementwiseCost(OpType::Add, rec.outShape),
                fixedParallelism(OpType::Add, 1,
                                 double(rec.outShape.elems())),
                {grad, found->second[i]});
        }

        switch (rec.kind) {
          case TapeKind::Conv:
          case TapeKind::Deconv: {
            if (rec.relu) {
                grad = _graph.add(
                    OpType::ReluGrad, rec.label + "/ReluGrad",
                    activationCost(OpType::ReluGrad, rec.outShape),
                    fixedParallelism(OpType::ReluGrad, 1, 0.0),
                    {grad, rec.actOp});
            }
            OpId bias_grad = _graph.add(
                OpType::BiasAddGrad, rec.label + "/BiasAddGrad",
                biasAddGradCost(rec.outShape, rec.cOut),
                fixedParallelism(OpType::BiasAddGrad, 8,
                                 double(rec.cOut)),
                {grad});
            grad_ops.push_back(bias_grad);
            grad_params.push_back(rec.cOut);
            grad_labels.push_back(rec.label + "/bias");

            OpId w_grad = _graph.add(
                OpType::Conv2DBackpropFilter,
                rec.label + "/Conv2DBackpropFilter",
                conv2dBackpropFilterCost(rec.inShape, rec.kH, rec.cOut,
                                         rec.sH),
                fixedParallelism(OpType::Conv2DBackpropFilter,
                                 rec.kH * rec.kW,
                                 double(rec.params)),
                {grad, rec.fwdOp});
            grad_ops.push_back(w_grad);
            grad_params.push_back(rec.params - rec.cOut);
            grad_labels.push_back(rec.label + "/kernel");

            if (produced(rec.in0)) {
                grad = _graph.add(
                    OpType::Conv2DBackpropInput,
                    rec.label + "/Conv2DBackpropInput",
                    conv2dBackpropInputCost(rec.inShape, rec.kH,
                                            rec.cOut, rec.sH),
                    fixedParallelism(OpType::Conv2DBackpropInput,
                                     rec.kH * rec.kW,
                                     double(rec.inShape.elems())),
                    {grad});
                contribute(rec.in0, grad);
            }
            break;
          }
          case TapeKind::Dense: {
            if (rec.relu) {
                grad = _graph.add(
                    OpType::ReluGrad, rec.label + "/ReluGrad",
                    activationCost(OpType::ReluGrad, rec.outShape),
                    fixedParallelism(OpType::ReluGrad, 1, 0.0),
                    {grad, rec.actOp});
            }
            OpId bias_grad = _graph.add(
                OpType::BiasAddGrad, rec.label + "/BiasAddGrad",
                biasAddGradCost(rec.outShape, rec.cOut),
                fixedParallelism(OpType::BiasAddGrad, 8,
                                 double(rec.cOut)),
                {grad});
            grad_ops.push_back(bias_grad);
            grad_params.push_back(rec.cOut);
            grad_labels.push_back(rec.label + "/bias");

            std::int64_t in_dim = rec.inShape.dim(1);
            std::int64_t b = rec.inShape.dim(0);
            OpId w_grad = _graph.add(
                OpType::MatMulGradWeights, rec.label + "/MatMul_grad_w",
                matmulCost(in_dim, b, rec.cOut),
                fixedParallelism(OpType::MatMulGradWeights,
                                 std::min<std::int64_t>(b, 64),
                                 double(in_dim * rec.cOut)),
                {grad, rec.fwdOp});
            grad_ops.push_back(w_grad);
            grad_params.push_back(in_dim * rec.cOut);
            grad_labels.push_back(rec.label + "/kernel");

            if (produced(rec.in0)) {
                grad = _graph.add(
                    OpType::MatMulGradInputs,
                    rec.label + "/MatMul_grad_x",
                    matmulCost(b, rec.cOut, in_dim),
                    fixedParallelism(OpType::MatMulGradInputs,
                                     std::min<std::int64_t>(rec.cOut, 64),
                                     double(b * in_dim)),
                    {grad});
                contribute(rec.in0, grad);
            }
            break;
          }
          case TapeKind::MatMul2: {
            // out = A x B, A:[m,k] B:[k,n]. dA = dOut x B^T,
            // dB = A^T x dOut; both operands are activations.
            std::int64_t m = rec.inShape.dim(0);
            std::int64_t kk = rec.inShape.dim(1);
            std::int64_t n = rec.outShape.dim(1);
            if (produced(rec.in0)) {
                std::vector<OpId> deps{grad};
                if (_tensors[rec.in1].op != invalidOp)
                    deps.push_back(_tensors[rec.in1].op);
                OpId da = _graph.add(
                    OpType::MatMulGradInputs,
                    rec.label + "/MatMul_grad_a", matmulCost(m, n, kk),
                    fixedParallelism(OpType::MatMulGradInputs,
                                     std::min<std::int64_t>(n, 64),
                                     double(m * kk)),
                    deps);
                contribute(rec.in0, da);
            }
            if (produced(rec.in1)) {
                std::vector<OpId> deps{grad};
                if (_tensors[rec.in0].op != invalidOp)
                    deps.push_back(_tensors[rec.in0].op);
                OpId db = _graph.add(
                    OpType::MatMulGradWeights,
                    rec.label + "/MatMul_grad_b", matmulCost(kk, m, n),
                    fixedParallelism(OpType::MatMulGradWeights,
                                     std::min<std::int64_t>(m, 64),
                                     double(kk * n)),
                    deps);
                contribute(rec.in1, db);
            }
            break;
          }
          case TapeKind::MaxPool:
            grad = _graph.add(
                OpType::MaxPoolGrad, rec.label + "/MaxPoolGrad",
                rec.kH == rec.kW && rec.sH == rec.sW
                    ? poolCost(OpType::MaxPoolGrad, rec.inShape, rec.kH,
                               rec.sH)
                    : poolCost2d(OpType::MaxPoolGrad, rec.inShape,
                                 rec.kH, rec.kW, rec.sH, rec.sW),
                fixedParallelism(OpType::MaxPoolGrad, 1, 0.0),
                {grad, rec.fwdOp});
            contribute(rec.in0, grad);
            break;
          case TapeKind::AvgPool:
            grad = _graph.add(
                OpType::AvgPoolGrad, rec.label + "/AvgPoolGrad",
                rec.kH == rec.kW && rec.sH == rec.sW
                    ? poolCost(OpType::AvgPoolGrad, rec.inShape, rec.kH,
                               rec.sH)
                    : poolCost2d(OpType::AvgPoolGrad, rec.inShape,
                                 rec.kH, rec.kW, rec.sH, rec.sW),
                fixedParallelism(OpType::AvgPoolGrad, 1, 0.0),
                {grad});
            contribute(rec.in0, grad);
            break;
          case TapeKind::BatchNorm:
            grad = _graph.add(
                OpType::BatchNormGrad, rec.label + "/FusedBatchNormGrad",
                batchNormCost(OpType::BatchNormGrad, rec.inShape),
                fixedParallelism(OpType::BatchNormGrad, 1,
                                 double(rec.inShape.elems())),
                {grad, rec.fwdOp});
            grad_ops.push_back(grad);
            grad_params.push_back(rec.params);
            grad_labels.push_back(rec.label + "/scale_offset");
            contribute(rec.in0, grad);
            break;
          case TapeKind::LayerNorm:
            grad = _graph.add(
                OpType::BatchNormGrad, rec.label + "/LayerNormGrad",
                batchNormCost(OpType::BatchNormGrad, rec.inShape),
                fixedParallelism(OpType::BatchNormGrad, 1,
                                 double(rec.inShape.elems())),
                {grad, rec.fwdOp});
            grad_ops.push_back(grad);
            grad_params.push_back(rec.params);
            grad_labels.push_back(rec.label + "/scale_offset");
            contribute(rec.in0, grad);
            break;
          case TapeKind::Dropout:
            grad = _graph.add(
                OpType::DropoutGrad, rec.label + "/DropoutGrad",
                dropoutCost(OpType::DropoutGrad, rec.inShape),
                fixedParallelism(OpType::DropoutGrad, 1, 0.0),
                {grad, rec.fwdOp});
            contribute(rec.in0, grad);
            break;
          case TapeKind::MulChain:
            grad = _graph.add(
                OpType::Mul, rec.label + "/MulGrad",
                elementwiseCost(OpType::Mul, rec.inShape),
                fixedParallelism(OpType::Mul, 1,
                                 double(rec.inShape.elems())),
                {grad});
            contribute(rec.in0, grad);
            break;
          case TapeKind::Mul2: {
            if (produced(rec.in0)) {
                std::vector<OpId> deps{grad};
                if (_tensors[rec.in1].op != invalidOp)
                    deps.push_back(_tensors[rec.in1].op);
                OpId da = _graph.add(
                    OpType::Mul, rec.label + "/MulGrad_a",
                    elementwiseCost(OpType::Mul, rec.inShape),
                    fixedParallelism(OpType::Mul, 1,
                                     double(rec.inShape.elems())),
                    deps);
                contribute(rec.in0, da);
            }
            if (produced(rec.in1)) {
                std::vector<OpId> deps{grad};
                if (_tensors[rec.in0].op != invalidOp)
                    deps.push_back(_tensors[rec.in0].op);
                OpId db = _graph.add(
                    OpType::Mul, rec.label + "/MulGrad_b",
                    elementwiseCost(OpType::Mul, rec.inShape),
                    fixedParallelism(OpType::Mul, 1,
                                     double(rec.inShape.elems())),
                    deps);
                contribute(rec.in1, db);
            }
            break;
          }
          case TapeKind::Add2:
            // d(a + b) passes the gradient through to both operands.
            contribute(rec.in0, grad);
            if (rec.in1 != rec.in0)
                contribute(rec.in1, grad);
            break;
          case TapeKind::Slice:
          case TapeKind::Concat:
            grad = _graph.add(
                OpType::Slice, rec.label + "/SliceGrad",
                dataMovementCost(double(rec.inShape.bytes())),
                fixedParallelism(OpType::Slice, 1, 0.0), {grad});
            contribute(rec.in0, grad);
            break;
          case TapeKind::Flatten:
            // Reshape gradients are metadata-only.
            contribute(rec.in0, grad);
            break;
          case TapeKind::Transpose:
            grad = _graph.add(
                OpType::Transpose, rec.label + "/TransposeGrad",
                dataMovementCost(double(rec.inShape.bytes())),
                fixedParallelism(OpType::Transpose, 1, 0.0), {grad});
            contribute(rec.in0, grad);
            break;
          case TapeKind::Softmax:
            grad = _graph.add(
                OpType::SoftmaxGrad, rec.label + "/SoftmaxGrad",
                softmaxCost(OpType::SoftmaxGrad, rec.inShape.dim(0),
                            rec.inShape.dim(1)),
                fixedParallelism(OpType::SoftmaxGrad, 1, 0.0),
                {grad, rec.fwdOp});
            contribute(rec.in0, grad);
            break;
          case TapeKind::Relu:
            grad = _graph.add(
                OpType::ReluGrad, rec.label + "/ReluGrad",
                activationCost(OpType::ReluGrad, rec.inShape),
                fixedParallelism(OpType::ReluGrad, 1, 0.0),
                {grad, rec.fwdOp});
            contribute(rec.in0, grad);
            break;
          case TapeKind::Tanh:
          case TapeKind::Sigmoid:
            // d/dx lowers to an elementwise product with a function
            // of the forward output (1 - y^2, resp. y(1 - y)).
            grad = _graph.add(
                OpType::Mul,
                rec.label
                    + (rec.kind == TapeKind::Tanh ? "/TanhGrad"
                                                  : "/SigmoidGrad"),
                elementwiseCost(OpType::Mul, rec.inShape),
                fixedParallelism(OpType::Mul, 1,
                                 double(rec.inShape.elems())),
                {grad, rec.fwdOp});
            contribute(rec.in0, grad);
            break;
        }
    }

    // ---- Optimizer: one update op per parameter tensor, in the
    // backward-walk discovery order (last layer's params first).
    for (std::size_t i = 0; i < grad_ops.size(); ++i)
        emitOptimizer(optimizer, grad_labels[i], grad_params[i],
                      grad_ops[i]);

    _finished = true;
    return std::move(_graph);
}

} // namespace hpim::nn
