/**
 * @file
 * Tensor shapes (NHWC) used by the op cost model.
 */

#ifndef HPIM_NN_TENSOR_SHAPE_HH
#define HPIM_NN_TENSOR_SHAPE_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace hpim::nn {

/** Bytes per element: the paper's fixed-function PIMs are FP32. */
constexpr std::uint32_t elementBytes = 4;

/** A dense tensor shape. */
class TensorShape
{
  public:
    TensorShape() = default;

    TensorShape(std::initializer_list<std::int64_t> dims)
        : _dims(dims)
    {
        for (auto d : _dims)
            fatal_if(d <= 0, "tensor dims must be positive, got ", d);
    }

    explicit TensorShape(std::vector<std::int64_t> dims)
        : _dims(std::move(dims))
    {
        for (auto d : _dims)
            fatal_if(d <= 0, "tensor dims must be positive, got ", d);
    }

    /** @return number of dimensions. */
    std::size_t rank() const { return _dims.size(); }

    std::int64_t
    dim(std::size_t i) const
    {
        panic_if(i >= _dims.size(), "dim index ", i, " out of rank ",
                 _dims.size());
        return _dims[i];
    }

    /** @return total element count (1 for a scalar / empty shape). */
    std::int64_t
    elems() const
    {
        std::int64_t n = 1;
        for (auto d : _dims)
            n *= d;
        return n;
    }

    /** @return size in bytes at FP32. */
    std::int64_t bytes() const { return elems() * elementBytes; }

    /** @return "[32, 224, 224, 3]" style string. */
    std::string str() const;

    bool operator==(const TensorShape &o) const { return _dims == o._dims; }

  private:
    std::vector<std::int64_t> _dims;
};

} // namespace hpim::nn

#endif // HPIM_NN_TENSOR_SHAPE_HH
