#include "nn/op_cost.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace hpim::nn {

CostStructure &
CostStructure::operator+=(const CostStructure &o)
{
    muls += o.muls;
    adds += o.adds;
    specials += o.specials;
    bytesRead += o.bytesRead;
    bytesWritten += o.bytesWritten;
    return *this;
}

CostStructure
CostStructure::scaled(double f) const
{
    CostStructure c = *this;
    c.muls *= f;
    c.adds *= f;
    c.specials *= f;
    c.bytesRead *= f;
    c.bytesWritten *= f;
    return c;
}

namespace {

/** Output spatial size for a same-padded, strided convolution. */
std::int64_t
outDim(std::int64_t in, std::int64_t stride)
{
    return (in + stride - 1) / stride;
}

struct ConvDims
{
    std::int64_t n, h, w, c_in, h_out, w_out;
};

ConvDims
convDims(const TensorShape &input, std::int64_t stride)
{
    fatal_if(input.rank() != 4, "conv input must be NHWC, got rank ",
             input.rank());
    ConvDims d{};
    d.n = input.dim(0);
    d.h = input.dim(1);
    d.w = input.dim(2);
    d.c_in = input.dim(3);
    d.h_out = outDim(d.h, stride);
    d.w_out = outDim(d.w, stride);
    return d;
}

} // namespace

CostStructure
conv2dCost(const TensorShape &input, std::int64_t k, std::int64_t c_out,
           std::int64_t stride)
{
    ConvDims d = convDims(input, stride);
    double macs = static_cast<double>(d.n) * d.h_out * d.w_out
                  * static_cast<double>(c_out) * k * k * d.c_in;
    CostStructure c;
    c.muls = macs;
    c.adds = macs; // accumulations ~= multiplies
    c.specials = 0.0;
    double in_bytes = static_cast<double>(input.bytes());
    double w_bytes = static_cast<double>(k * k * d.c_in * c_out)
                     * elementBytes;
    double out_bytes = static_cast<double>(d.n * d.h_out * d.w_out * c_out)
                       * elementBytes;
    c.bytesRead = in_bytes + w_bytes;
    c.bytesWritten = out_bytes;
    return c;
}

CostStructure
conv2dBackpropFilterCost(const TensorShape &input, std::int64_t k,
                         std::int64_t c_out, std::int64_t stride)
{
    // Same MAC volume as fprop, plus cross-batch accumulation logic
    // and index arithmetic (the "phase 1/2" work of paper Fig. 6).
    CostStructure c = conv2dCost(input, k, c_out, stride);
    ConvDims d = convDims(input, stride);
    double grad_bytes = static_cast<double>(d.n * d.h_out * d.w_out * c_out)
                        * elementBytes;
    c.bytesRead += grad_bytes;         // reads dL/dy as well
    c.specials = c.muls * opTraits(OpType::Conv2DBackpropFilter)
                              .specialFraction;
    return c;
}

CostStructure
conv2dBackpropInputCost(const TensorShape &input, std::int64_t k,
                        std::int64_t c_out, std::int64_t stride)
{
    CostStructure c = conv2dCost(input, k, c_out, stride);
    c.bytesWritten = static_cast<double>(input.bytes()); // writes dL/dx
    c.specials = c.muls * opTraits(OpType::Conv2DBackpropInput)
                              .specialFraction;
    return c;
}

CostStructure
matmulCost(std::int64_t m, std::int64_t k, std::int64_t n)
{
    CostStructure c;
    double macs = static_cast<double>(m) * k * n;
    c.muls = macs;
    c.adds = macs;
    c.bytesRead = static_cast<double>(m * k + k * n) * elementBytes;
    c.bytesWritten = static_cast<double>(m * n) * elementBytes;
    return c;
}

CostStructure
elementwiseCost(OpType type, const TensorShape &shape)
{
    CostStructure c;
    double n = static_cast<double>(shape.elems());
    switch (type) {
      case OpType::Mul:
        c.muls = n;
        break;
      case OpType::Add:
      case OpType::Sub:
        c.adds = n;
        break;
      default:
        panic("elementwiseCost: not an elementwise type: ", opName(type));
    }
    c.bytesRead = 2.0 * n * elementBytes;
    c.bytesWritten = n * elementBytes;
    return c;
}

CostStructure
biasAddCost(const TensorShape &shape, std::int64_t channels)
{
    CostStructure c;
    double n = static_cast<double>(shape.elems());
    c.adds = n;
    c.bytesRead = n * elementBytes
                  + static_cast<double>(channels) * elementBytes;
    c.bytesWritten = n * elementBytes;
    return c;
}

CostStructure
biasAddGradCost(const TensorShape &shape, std::int64_t channels)
{
    // Reduce the gradient over every non-channel dimension. This is
    // add-heavy and extremely memory intensive (paper Table I shows
    // BiasAddGrad as a top memory op).
    CostStructure c;
    double n = static_cast<double>(shape.elems());
    c.adds = n;
    c.specials = n * opTraits(OpType::BiasAddGrad).specialFraction;
    c.bytesRead = n * elementBytes;
    c.bytesWritten = static_cast<double>(channels) * elementBytes;
    return c;
}

CostStructure
activationCost(OpType type, const TensorShape &shape)
{
    CostStructure c;
    double n = static_cast<double>(shape.elems());
    switch (type) {
      case OpType::Relu:
      case OpType::ReluGrad:
        c.specials = n; // compare + select
        break;
      case OpType::Tanh:
      case OpType::Sigmoid:
        c.specials = 4.0 * n; // exp-based
        break;
      default:
        panic("activationCost: not an activation: ", opName(type));
    }
    c.bytesRead = n * elementBytes
                  * (type == OpType::ReluGrad ? 2.0 : 1.0);
    c.bytesWritten = n * elementBytes;
    return c;
}

CostStructure
poolCost(OpType type, const TensorShape &input, std::int64_t k,
         std::int64_t stride)
{
    ConvDims d = convDims(input, stride);
    double out = static_cast<double>(d.n) * d.h_out * d.w_out * d.c_in;
    double window = static_cast<double>(k * k);
    CostStructure c;
    switch (type) {
      case OpType::MaxPool:
        c.specials = out * window; // compares
        break;
      case OpType::MaxPoolGrad:
        c.specials = out * (window + 1.0); // argmax replay + scatter
        break;
      case OpType::AvgPool:
        c.adds = out * window;
        c.specials = out; // divide
        break;
      case OpType::AvgPoolGrad:
        c.adds = out * window;
        c.specials = out;
        break;
      default:
        panic("poolCost: not a pooling op: ", opName(type));
    }
    c.bytesRead = static_cast<double>(input.bytes());
    c.bytesWritten = out * elementBytes;
    return c;
}

CostStructure
poolCost2d(OpType type, const TensorShape &input, std::int64_t kh,
           std::int64_t kw, std::int64_t sh, std::int64_t sw)
{
    fatal_if(input.rank() != 4, "pool input must be NHWC, got rank ",
             input.rank());
    double out = static_cast<double>(input.dim(0))
                 * outDim(input.dim(1), sh) * outDim(input.dim(2), sw)
                 * input.dim(3);
    double window = static_cast<double>(kh * kw);
    CostStructure c;
    switch (type) {
      case OpType::MaxPool:
        c.specials = out * window; // compares
        break;
      case OpType::MaxPoolGrad:
        c.specials = out * (window + 1.0); // argmax replay + scatter
        break;
      case OpType::AvgPool:
        c.adds = out * window;
        c.specials = out; // divide
        break;
      case OpType::AvgPoolGrad:
        c.adds = out * window;
        c.specials = out;
        break;
      default:
        panic("poolCost2d: not a pooling op: ", opName(type));
    }
    c.bytesRead = static_cast<double>(input.bytes());
    c.bytesWritten = out * elementBytes;
    return c;
}

CostStructure
softmaxCost(OpType type, std::int64_t batch, std::int64_t classes)
{
    CostStructure c;
    double n = static_cast<double>(batch * classes);
    if (type == OpType::Softmax) {
        c.specials = 3.0 * n; // exp + max + normalize
        c.adds = n;
    } else {
        c.specials = n;
        c.muls = n;
        c.adds = n;
    }
    c.bytesRead = n * elementBytes;
    c.bytesWritten = n * elementBytes;
    return c;
}

CostStructure
applyAdamCost(std::int64_t params)
{
    // m/v moment updates, bias correction, sqrt, divide per parameter.
    CostStructure c;
    double n = static_cast<double>(params);
    c.muls = 6.0 * n;
    c.adds = 4.0 * n;
    c.specials = 2.0 * n; // sqrt + divide
    c.bytesRead = 3.0 * n * elementBytes;  // param + m + v
    c.bytesWritten = 3.0 * n * elementBytes;
    return c;
}

CostStructure
applySgdCost(std::int64_t params)
{
    // One fused multiply-add per parameter; reads param + gradient,
    // writes the param back. No moment state, so the memory footprint
    // is a third of Adam's -- the contrast the GradPIM-style
    // optimizer-heavy mixes are about.
    CostStructure c;
    double n = static_cast<double>(params);
    c.muls = n;
    c.adds = n;
    c.specials = 0.2 * n; // learning-rate schedule + bounds checks
    c.bytesRead = 2.0 * n * elementBytes; // param + grad
    c.bytesWritten = n * elementBytes;
    return c;
}

CostStructure
dropoutCost(OpType type, const TensorShape &shape)
{
    CostStructure c;
    double n = static_cast<double>(shape.elems());
    c.specials = (type == OpType::Dropout ? 2.0 : 1.0) * n; // RNG+mask
    c.muls = n;
    c.bytesRead = n * elementBytes;
    c.bytesWritten = n * elementBytes;
    return c;
}

CostStructure
lstmCellCost(OpType type, std::int64_t batch, std::int64_t input_dim,
             std::int64_t hidden)
{
    // Four gates: [batch, in+hidden] x [in+hidden, 4*hidden] matmul,
    // plus elementwise gate math (sigmoid/tanh specials).
    CostStructure c =
        matmulCost(batch, input_dim + hidden, 4 * hidden);
    double gate_elems = static_cast<double>(batch * hidden) * 4.0;
    c.specials += 5.0 * gate_elems;
    c.muls += 3.0 * static_cast<double>(batch * hidden);
    c.adds += 2.0 * static_cast<double>(batch * hidden);
    if (type == OpType::LstmCellGrad) {
        c = c.scaled(2.0); // backward ~2x forward work
    }
    return c;
}

CostStructure
batchNormCost(OpType type, const TensorShape &shape)
{
    CostStructure c;
    double n = static_cast<double>(shape.elems());
    c.adds = 2.0 * n;  // mean/var reductions
    c.muls = 2.0 * n;  // scale
    c.specials = n * opTraits(type).specialFraction;
    c.bytesRead = n * elementBytes;
    c.bytesWritten = n * elementBytes;
    if (type == OpType::BatchNormGrad)
        c = c.scaled(1.5);
    return c;
}

CostStructure
embeddingCost(OpType type, std::int64_t rows, std::int64_t dim)
{
    CostStructure c;
    double n = static_cast<double>(rows * dim);
    c.specials = static_cast<double>(rows); // index math
    if (type == OpType::EmbeddingGrad)
        c.adds = n; // scatter-add
    c.bytesRead = n * elementBytes;
    c.bytesWritten = n * elementBytes;
    return c;
}

CostStructure
nceLossCost(std::int64_t batch, std::int64_t negatives, std::int64_t dim)
{
    CostStructure c;
    double pairs = static_cast<double>(batch) * (1.0 + negatives);
    c.muls = pairs * dim; // dot products
    c.adds = pairs * dim;
    c.specials = pairs * 4.0; // sigmoid + log
    c.bytesRead = pairs * dim * elementBytes;
    c.bytesWritten = pairs * elementBytes;
    return c;
}

CostStructure
dataMovementCost(double bytes)
{
    CostStructure c;
    c.specials = bytes / elementBytes; // address generation per element
    c.bytesRead = bytes;
    c.bytesWritten = bytes;
    return c;
}

FixedParallelism
fixedParallelism(OpType type, std::int64_t reduction, double lanes)
{
    FixedParallelism p;
    if (!hasFixedPortion(type)) {
        p.unitsPerLane = 0;
        p.lanes = 0.0;
        return p;
    }
    std::int64_t r = std::max<std::int64_t>(reduction, 1);
    // A K-long reduction tree: K multipliers + (K-1) adders.
    // Elementwise ops (r == 1) use one unit per lane.
    p.unitsPerLane = static_cast<std::uint32_t>(
        std::min<std::int64_t>(2 * r - 1, 1 << 20));
    p.lanes = std::max(lanes, 1.0);
    return p;
}

} // namespace hpim::nn
