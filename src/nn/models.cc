#include "nn/models.hh"

#include "nn/builder.hh"
#include "nn/graph_builder.hh"
#include "sim/logging.hh"

namespace hpim::nn {

int
defaultBatchSize(ModelId model)
{
    switch (model) {
      case ModelId::Vgg19:       return 32;
      case ModelId::AlexNet:     return 32;
      case ModelId::Dcgan:       return 64;
      case ModelId::ResNet50:    return 128;
      case ModelId::InceptionV3: return 32;
      case ModelId::Lstm:        return 20;
      case ModelId::Word2vec:    return 128;
    }
    panic("unknown model id");
}

std::string
modelName(ModelId model)
{
    switch (model) {
      case ModelId::Vgg19:       return "VGG-19";
      case ModelId::AlexNet:     return "AlexNet";
      case ModelId::Dcgan:       return "DCGAN";
      case ModelId::ResNet50:    return "ResNet-50";
      case ModelId::InceptionV3: return "Inception-v3";
      case ModelId::Lstm:        return "LSTM";
      case ModelId::Word2vec:    return "Word2vec";
    }
    panic("unknown model id");
}

Graph
buildModel(ModelId model, int batch)
{
    if (batch <= 0)
        batch = defaultBatchSize(model);
    switch (model) {
      case ModelId::Vgg19:       return buildVgg19(batch);
      case ModelId::AlexNet:     return buildAlexNet(batch);
      case ModelId::Dcgan:       return buildDcgan(batch);
      case ModelId::ResNet50:    return buildResNet50(batch);
      case ModelId::InceptionV3: return buildInceptionV3(batch);
      case ModelId::Lstm:        return buildLstm(batch);
      case ModelId::Word2vec:    return buildWord2vec(batch);
    }
    panic("unknown model id");
}

std::vector<ModelId>
cnnModels()
{
    return {ModelId::Vgg19, ModelId::AlexNet, ModelId::Dcgan,
            ModelId::ResNet50, ModelId::InceptionV3};
}

std::vector<ModelId>
allModels()
{
    return {ModelId::Vgg19,       ModelId::AlexNet, ModelId::Dcgan,
            ModelId::ResNet50,    ModelId::InceptionV3,
            ModelId::Lstm,        ModelId::Word2vec};
}

Graph
buildVgg19(int batch)
{
    CnnBuilder b("VGG-19", TensorShape{batch, 224, 224, 3});
    // conv3-64 x2, pool
    b.conv(3, 64, 1).conv(3, 64, 1).maxPool(2, 2);
    // conv3-128 x2, pool
    b.conv(3, 128, 1).conv(3, 128, 1).maxPool(2, 2);
    // conv3-256 x4, pool
    b.conv(3, 256, 1).conv(3, 256, 1).conv(3, 256, 1).conv(3, 256, 1);
    b.maxPool(2, 2);
    // conv3-512 x4, pool
    b.conv(3, 512, 1).conv(3, 512, 1).conv(3, 512, 1).conv(3, 512, 1);
    b.maxPool(2, 2);
    // conv3-512 x4, pool
    b.conv(3, 512, 1).conv(3, 512, 1).conv(3, 512, 1).conv(3, 512, 1);
    b.maxPool(2, 2);
    // FC 4096, 4096, 1000
    b.fc(4096).dropout().fc(4096).dropout().fc(1000, false);
    return b.finish();
}

Graph
buildAlexNet(int batch)
{
    CnnBuilder b("AlexNet", TensorShape{batch, 227, 227, 3});
    b.conv(11, 96, 4).maxPool(3, 2);
    b.conv(5, 256, 1).maxPool(3, 2);
    b.conv(3, 384, 1).conv(3, 384, 1).conv(3, 256, 1).maxPool(3, 2);
    b.fc(4096).dropout().fc(4096).dropout().fc(1000, false);
    return b.finish();
}

Graph
buildDcgan(int batch)
{
    // Generator (z=100 -> 28x28x1) + discriminator in one step.
    // TensorFlow lowers the generator's conv2d_transpose layers to
    // Conv2DBackpropInput forward ops; the training step also contains
    // many small Mul/Slice ops from the two-player loss plumbing
    // (Table I: Mul x84, Slice is a top memory op).
    CnnBuilder net("DCGAN", TensorShape{batch, 7, 7, 128});
    net.slice();                       // z / minibatch plumbing
    net.deconv(5, 64, 2).batchNorm();  // 14x14x64
    net.deconv(5, 1, 2, false);        // 28x28x1 (tanh omitted)
    // Discriminator on the generated image.
    net.conv(5, 64, 2).conv(5, 128, 2); // 14x14x64 -> 7x7x128
    net.slice();
    net.flatten().fc(1024).dropout().fc(1, false);
    // Extra generator/discriminator FC pairs to reflect both players'
    // updates in a single profiled step.
    net.fc(64, true).fc(32, true).fc(16, true).fc(8, true);
    return net.finish(/*extra_loss_muls=*/60);
}

Graph
buildResNet50(int batch)
{
    CnnBuilder b("ResNet-50", TensorShape{batch, 224, 224, 3});
    b.conv(7, 64, 2).batchNorm().maxPool(3, 2);

    // Bottleneck stages [3, 4, 6, 3]; the projection/identity adds are
    // modelled by the running chain; each bottleneck is 1x1, 3x3, 1x1.
    auto bottleneck = [&b](std::int64_t mid, std::int64_t out,
                           std::int64_t stride) {
        b.conv(1, mid, stride).batchNorm();
        b.conv(3, mid, 1).batchNorm();
        b.conv(1, out, 1, false).batchNorm();
    };

    for (int i = 0; i < 3; ++i)
        bottleneck(64, 256, 1);
    bottleneck(128, 512, 2);
    for (int i = 0; i < 3; ++i)
        bottleneck(128, 512, 1);
    bottleneck(256, 1024, 2);
    for (int i = 0; i < 5; ++i)
        bottleneck(256, 1024, 1);
    bottleneck(512, 2048, 2);
    for (int i = 0; i < 2; ++i)
        bottleneck(512, 2048, 1);

    b.avgPool(7, 7);
    b.fc(1000, false);
    return b.finish();
}

Graph
buildInceptionV3(int batch)
{
    CnnBuilder b("Inception-v3", TensorShape{batch, 299, 299, 3});
    // Stem.
    b.conv(3, 32, 2).batchNorm();
    b.conv(3, 32, 1).batchNorm();
    b.conv(3, 64, 1).batchNorm().maxPool(3, 2);
    b.conv(1, 80, 1).batchNorm();
    b.conv(3, 192, 1).batchNorm().maxPool(3, 2);

    // Inception-A x3 (35x35): modelled as the four branch convs in
    // sequence plus a concat; branch widths follow the published net.
    for (int i = 0; i < 3; ++i) {
        b.conv(1, 64, 1).batchNorm();
        b.conv(5, 64, 1).batchNorm();
        b.conv(3, 96, 1).batchNorm().conv(3, 96, 1).batchNorm();
        b.conv(1, 32 + 32 * i, 1).batchNorm();
        b.concat();
    }
    // Reduction-A.
    b.conv(3, 384, 2).batchNorm();

    // Inception-B x4 (17x17) with factorized 7x7 (modelled as 7-wide).
    for (int i = 0; i < 4; ++i) {
        b.conv(1, 192, 1).batchNorm();
        b.conv(7, 128 + 32 * (i % 2), 1).batchNorm();
        b.conv(1, 192, 1).batchNorm();
        b.concat();
    }
    // Reduction-B.
    b.conv(3, 320, 2).batchNorm();

    // Inception-C x2 (8x8).
    for (int i = 0; i < 2; ++i) {
        b.conv(1, 320, 1).batchNorm();
        b.conv(3, 384, 1).batchNorm();
        b.conv(3, 448, 1).batchNorm();
        b.concat();
    }

    b.avgPool(8, 8);
    b.dropout();
    b.fc(1000, false);
    return b.finish();
}

Graph
buildLstm(int batch)
{
    // PTB "medium": 2 layers, hidden 650, seq_len 35, vocab 10000.
    const std::int64_t hidden = 650;
    const std::int64_t seq = 35;
    const std::int64_t vocab = 10000;

    Builder b("LSTM");
    OpId prev = b.rawOp(OpType::EmbeddingLookup, "embed/Lookup",
                      embeddingCost(OpType::EmbeddingLookup,
                                    batch * seq, hidden),
                      fixedParallelism(OpType::EmbeddingLookup, 1, 0.0));

    std::vector<OpId> cell_fwd;
    for (int layer = 0; layer < 2; ++layer) {
        std::int64_t in_dim = hidden;
        for (int t = 0; t < seq; ++t) {
            std::string label = "lstm" + std::to_string(layer) + "/t"
                                + std::to_string(t);
            prev = b.rawOp(OpType::LstmCell, label + "/LSTMCell",
                         lstmCellCost(OpType::LstmCell, batch, in_dim,
                                      hidden),
                         fixedParallelism(OpType::LstmCell, 64,
                                          double(batch * 4 * hidden)),
                         {prev});
            cell_fwd.push_back(prev);
        }
        prev = b.rawOp(OpType::Dropout,
                     "lstm" + std::to_string(layer) + "/Dropout",
                     dropoutCost(OpType::Dropout,
                                 TensorShape{batch * seq, hidden}),
                     fixedParallelism(OpType::Dropout, 1, 0.0), {prev});
    }

    // Output projection over the whole unrolled sequence.
    OpId proj = b.rawOp(OpType::MatMul, "proj/MatMul",
                      matmulCost(batch * seq, hidden, vocab),
                      fixedParallelism(OpType::MatMul, 64,
                                       double(batch * seq * vocab)),
                      {prev});
    OpId soft = b.rawOp(OpType::Softmax, "loss/Softmax",
                      softmaxCost(OpType::Softmax, batch * seq, vocab),
                      fixedParallelism(OpType::Softmax, 1, 0.0), {proj});
    OpId grad = b.rawOp(OpType::SoftmaxGrad, "loss/SoftmaxGrad",
                      softmaxCost(OpType::SoftmaxGrad, batch * seq, vocab),
                      fixedParallelism(OpType::SoftmaxGrad, 1, 0.0),
                      {soft});
    grad = b.rawOp(OpType::MatMulGradWeights, "proj/MatMul_grad_w",
                 matmulCost(hidden, batch * seq, vocab),
                 fixedParallelism(OpType::MatMulGradWeights, 64,
                                  double(hidden * vocab)),
                 {grad});

    // Backward through time, newest step first.
    for (auto it = cell_fwd.rbegin(); it != cell_fwd.rend(); ++it) {
        grad = b.rawOp(OpType::LstmCellGrad, "bptt/LSTMCellGrad",
                     lstmCellCost(OpType::LstmCellGrad, batch, hidden,
                                  hidden),
                     fixedParallelism(OpType::LstmCellGrad, 64,
                                      double(batch * 4 * hidden)),
                     {grad, *it});
    }

    OpId embed_grad = b.rawOp(OpType::EmbeddingGrad, "embed/Grad",
                            embeddingCost(OpType::EmbeddingGrad,
                                          batch * seq, hidden),
                            fixedParallelism(OpType::EmbeddingGrad, 1,
                                             0.0),
                            {grad});

    // Parameter updates: 2 layers of LSTM weights + projection + embed.
    std::int64_t lstm_params = 2 * (4 * (2 * hidden) * hidden);
    b.rawOp(OpType::ApplyAdam, "lstm/ApplyAdam",
          applyAdamCost(lstm_params),
          fixedParallelism(OpType::ApplyAdam, 1, 0.0), {grad});
    b.rawOp(OpType::ApplyAdam, "proj/ApplyAdam",
          applyAdamCost(hidden * vocab),
          fixedParallelism(OpType::ApplyAdam, 1, 0.0), {grad});
    b.rawOp(OpType::ApplyAdam, "embed/ApplyAdam",
          applyAdamCost(vocab * hidden),
          fixedParallelism(OpType::ApplyAdam, 1, 0.0), {embed_grad});
    return b.finishForward();
}

Graph
buildWord2vec(int batch)
{
    // Skip-gram with NCE loss, embedding dim 128, vocab 50000,
    // 64 negative samples ("questions-words" setup in TensorFlow).
    const std::int64_t dim = 128;
    const std::int64_t vocab = 50000;
    const std::int64_t negatives = 64;

    Builder b("Word2vec");
    OpId in = b.rawOp(OpType::EmbeddingLookup, "embed_in/Lookup",
                    embeddingCost(OpType::EmbeddingLookup, batch, dim),
                    fixedParallelism(OpType::EmbeddingLookup, 1, 0.0));
    OpId out = b.rawOp(OpType::EmbeddingLookup, "embed_out/Lookup",
                     embeddingCost(OpType::EmbeddingLookup,
                                   batch * (1 + negatives), dim),
                     fixedParallelism(OpType::EmbeddingLookup, 1, 0.0));
    OpId loss = b.rawOp(OpType::NceLoss, "loss/NceLoss",
                      nceLossCost(batch, negatives, dim),
                      fixedParallelism(OpType::NceLoss, 16,
                                       double(batch * (1 + negatives))),
                      {in, out});
    OpId grad_in = b.rawOp(OpType::EmbeddingGrad, "embed_in/Grad",
                         embeddingCost(OpType::EmbeddingGrad, batch, dim),
                         fixedParallelism(OpType::EmbeddingGrad, 1, 0.0),
                         {loss});
    OpId grad_out = b.rawOp(OpType::EmbeddingGrad, "embed_out/Grad",
                          embeddingCost(OpType::EmbeddingGrad,
                                        batch * (1 + negatives), dim),
                          fixedParallelism(OpType::EmbeddingGrad, 1, 0.0),
                          {loss});
    b.rawOp(OpType::ApplyAdam, "embed_in/ApplyAdam",
          applyAdamCost(vocab * dim / 100), // touched rows only
          fixedParallelism(OpType::ApplyAdam, 1, 0.0), {grad_in});
    b.rawOp(OpType::ApplyAdam, "embed_out/ApplyAdam",
          applyAdamCost(vocab * dim / 100),
          fixedParallelism(OpType::ApplyAdam, 1, 0.0), {grad_out});
    return b.finishForward();
}

} // namespace hpim::nn
