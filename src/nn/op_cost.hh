/**
 * @file
 * Analytic cost structures for NN training operations.
 *
 * A CostStructure separates an op's dynamic work into multiplies, adds
 * and "special" operations (compares, exp, RNG, gather...), plus DRAM
 * traffic in bytes. This is the information the paper's profiler
 * extracts with TensorBoard + VTune, and everything the runtime
 * scheduler needs.
 */

#ifndef HPIM_NN_OP_COST_HH
#define HPIM_NN_OP_COST_HH

#include <cstdint>

#include "nn/op_type.hh"
#include "nn/tensor_shape.hh"

namespace hpim::nn {

/** Dynamic work and traffic of one operation instance. */
struct CostStructure
{
    double muls = 0.0;     ///< FP32 multiplies
    double adds = 0.0;     ///< FP32 adds
    double specials = 0.0; ///< non-mul/add scalar operations
    double bytesRead = 0.0;
    double bytesWritten = 0.0;

    /** Total floating-point work (mul + add). */
    double flops() const { return muls + adds; }
    /** All scalar operations including specials. */
    double totalOps() const { return muls + adds + specials; }
    /** Total DRAM traffic. */
    double bytes() const { return bytesRead + bytesWritten; }
    /** Arithmetic intensity in flops/byte (0 when no traffic). */
    double
    intensity() const
    {
        return bytes() > 0.0 ? flops() / bytes() : 0.0;
    }

    CostStructure &operator+=(const CostStructure &o);
    /** @return this cost scaled by @p f (all fields). */
    CostStructure scaled(double f) const;
};

/**
 * Natural reduction-tree width of an op on the fixed-function PIM pool.
 *
 * The paper's example (SectionIII-C): one 11x11 convolution occupies
 * 121 multipliers + 120 adders = 241 units. We generalize: a reduction
 * over K elements uses K multipliers and K-1 adders (2K - 1 units).
 */
struct FixedParallelism
{
    /** Units one "lane" of the op occupies (2K-1 for a K-reduction). */
    std::uint32_t unitsPerLane = 0;
    /** Independent lanes available (output elements), caps scaling. */
    double lanes = 0.0;

    /** Max units the op can exploit at once (capped by lane count). */
    double
    maxUnits() const
    {
        return static_cast<double>(unitsPerLane) * lanes;
    }
};

/** Cost of conv2d fprop: input NHWC, filter KKCinCout, stride s. */
CostStructure conv2dCost(const TensorShape &input, std::int64_t k,
                         std::int64_t c_out, std::int64_t stride);

/** Cost of conv2d filter gradient (same loop nest + accumulation). */
CostStructure conv2dBackpropFilterCost(const TensorShape &input,
                                       std::int64_t k, std::int64_t c_out,
                                       std::int64_t stride);

/** Cost of conv2d input gradient. */
CostStructure conv2dBackpropInputCost(const TensorShape &input,
                                      std::int64_t k, std::int64_t c_out,
                                      std::int64_t stride);

/** Cost of [m,k] x [k,n] matmul. */
CostStructure matmulCost(std::int64_t m, std::int64_t k, std::int64_t n);

/** Cost of an elementwise binary op over @p shape. */
CostStructure elementwiseCost(OpType type, const TensorShape &shape);

/** Cost of bias add over activations @p shape (+channels vector). */
CostStructure biasAddCost(const TensorShape &shape, std::int64_t channels);

/** Cost of bias gradient (reduction over all but channels). */
CostStructure biasAddGradCost(const TensorShape &shape,
                              std::int64_t channels);

/** Cost of an activation function (Relu/Tanh/Sigmoid/grads). */
CostStructure activationCost(OpType type, const TensorShape &shape);

/** Cost of max/avg pooling with window k, stride s. */
CostStructure poolCost(OpType type, const TensorShape &input,
                       std::int64_t k, std::int64_t stride);

/** Cost of pooling with a non-square window kh x kw, strides sh/sw.
 *  For a square window this matches poolCost exactly. */
CostStructure poolCost2d(OpType type, const TensorShape &input,
                         std::int64_t kh, std::int64_t kw,
                         std::int64_t sh, std::int64_t sw);

/** Cost of softmax (+grad) over [batch, classes]. */
CostStructure softmaxCost(OpType type, std::int64_t batch,
                          std::int64_t classes);

/** Cost of the Adam update over @p params parameters. */
CostStructure applyAdamCost(std::int64_t params);

/** Cost of the plain SGD update (p -= lr * g) over @p params. */
CostStructure applySgdCost(std::int64_t params);

/** Cost of dropout (+grad) over @p shape. */
CostStructure dropoutCost(OpType type, const TensorShape &shape);

/** Cost of one fused LSTM cell step (fwd or bwd). */
CostStructure lstmCellCost(OpType type, std::int64_t batch,
                           std::int64_t input_dim, std::int64_t hidden);

/** Cost of batch norm (+grad) over activations. */
CostStructure batchNormCost(OpType type, const TensorShape &shape);

/** Cost of embedding lookup/grad: batch rows of width dim. */
CostStructure embeddingCost(OpType type, std::int64_t rows,
                            std::int64_t dim);

/** Cost of NCE loss over batch x (1 + negatives) samples of dim. */
CostStructure nceLossCost(std::int64_t batch, std::int64_t negatives,
                          std::int64_t dim);

/** Cost of a pure data-movement op over @p bytes. */
CostStructure dataMovementCost(double bytes);

/**
 * Natural fixed-function parallelism for an op instance.
 *
 * @param type op type
 * @param reduction length of the inner reduction (K*K*Cin for conv,
 *        inner dim for matmul, 1 for elementwise)
 * @param lanes number of independent output lanes
 */
FixedParallelism fixedParallelism(OpType type, std::int64_t reduction,
                                  double lanes);

} // namespace hpim::nn

#endif // HPIM_NN_OP_COST_HH
