#include "nn/tensor_shape.hh"

#include <sstream>

namespace hpim::nn {

std::string
TensorShape::str() const
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < _dims.size(); ++i) {
        if (i)
            os << ", ";
        os << _dims[i];
    }
    os << ']';
    return os.str();
}

} // namespace hpim::nn
