#include "nn/summary.hh"

#include <algorithm>
#include <iomanip>
#include <map>

namespace hpim::nn {

GraphSummary
summarize(const Graph &graph)
{
    GraphSummary summary;
    summary.name = graph.name();
    summary.ops = graph.size();
    summary.criticalPath = graph.criticalPathLength();

    std::map<OpType, SummaryRow> agg;
    for (const Operation &op : graph.ops()) {
        SummaryRow &row = agg[op.type];
        row.type = op.type;
        ++row.invocations;
        row.gflops += op.cost.flops() / 1e9;
        row.gbytes += op.cost.bytes() / 1e9;
    }
    for (auto &[type, row] : agg) {
        summary.totalGflops += row.gflops;
        summary.totalGbytes += row.gbytes;
        summary.rows.push_back(row);
    }
    for (auto &row : summary.rows) {
        row.flopsPct = summary.totalGflops > 0.0
                           ? 100.0 * row.gflops / summary.totalGflops
                           : 0.0;
    }
    std::sort(summary.rows.begin(), summary.rows.end(),
              [](const SummaryRow &a, const SummaryRow &b) {
                  return a.gflops > b.gflops;
              });
    return summary;
}

void
GraphSummary::print(std::ostream &os) const
{
    os << name << ": " << ops << " ops, " << std::fixed
       << std::setprecision(2) << totalGflops << " GFLOP, "
       << totalGbytes << " GB traffic, critical path " << criticalPath
       << "\n";
    os << std::left << std::setw(24) << "  op type" << std::right
       << std::setw(8) << "count" << std::setw(12) << "GFLOP"
       << std::setw(10) << "GB" << std::setw(9) << "flops%" << "\n";
    for (const SummaryRow &row : rows) {
        os << "  " << std::left << std::setw(22) << opName(row.type)
           << std::right << std::setw(8) << row.invocations
           << std::setw(12) << std::setprecision(2) << row.gflops
           << std::setw(10) << row.gbytes << std::setw(8)
           << std::setprecision(1) << row.flopsPct << "%\n";
    }
}

namespace {

const char *
classColor(OffloadClass cls)
{
    switch (cls) {
      case OffloadClass::FixedFunction:   return "#8dd3c7";
      case OffloadClass::Recursive:       return "#ffffb3";
      case OffloadClass::ProgrammableOnly: return "#bebada";
      case OffloadClass::DataMovement:    return "#fb8072";
    }
    return "#ffffff";
}

std::string
escapeLabel(const std::string &label)
{
    std::string out;
    for (char c : label) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
exportDot(const Graph &graph, std::ostream &os)
{
    os << "digraph \"" << escapeLabel(graph.name()) << "\" {\n"
       << "  rankdir=TB;\n"
       << "  node [shape=box, style=filled, fontsize=10];\n";
    for (const Operation &op : graph.ops()) {
        os << "  n" << op.id << " [label=\"" << escapeLabel(op.label)
           << "\", fillcolor=\""
           << classColor(opTraits(op.type).offloadClass) << "\"];\n";
    }
    for (const Operation &op : graph.ops()) {
        for (OpId in : op.inputs)
            os << "  n" << in << " -> n" << op.id << ";\n";
    }
    os << "}\n";
}

} // namespace hpim::nn
