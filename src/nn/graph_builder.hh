/**
 * @file
 * The op-by-op graph builder: the public frontier for user workloads.
 *
 * Builder generalizes the layer-level CnnBuilder (nn/builder.hh) into
 * a popart-BuilderImpl-style API: every method takes explicit
 * TensorRef operands, infers and validates the output shape, appends
 * the lowered cost-model ops to the Graph, and records a tape entry
 * so trainingStep() can later emit the TensorFlow-style backward pass
 * plus a pluggable optimizer (Adam, or plain SGD for GradPIM-style
 * optimizer-heavy mixes). finishForward() instead closes the graph as
 * an inference workload (forward ops only, in the spirit of the
 * PIM-inference line of work in PAPERS.md).
 *
 * Determinism contract: for the linear single-activation chains
 * CnnBuilder builds, Builder emits byte-for-byte the same op
 * sequence -- same labels, same costs, same dependence lists -- so
 * CnnBuilder now delegates here and every built-in model keeps its
 * Graph::signature() and its figure-bench output.
 *
 * Shape errors (rank mismatches, incompatible matmul dims, refs from
 * a different builder) abort through sim/logging's fatal_if with a
 * named-op diagnostic; tests cover them as death tests. The JSON
 * graph loader (nn/graph_io.hh) never aborts -- it throws typed
 * errors -- because its inputs are user files, not program bugs.
 */

#ifndef HPIM_NN_GRAPH_BUILDER_HH
#define HPIM_NN_GRAPH_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.hh"
#include "nn/tensor_shape.hh"

namespace hpim::nn {

/** Optimizer emitted by Builder::trainingStep for each parameter. */
enum class Optimizer
{
    Adam, ///< ApplyAdam per parameter tensor (the paper's setup)
    Sgd,  ///< ApplySgd per parameter tensor (optimizer-light mix)
};

/**
 * A value flowing between Builder ops. Refs are cheap handles; the
 * Builder owns the shape/producer tables they index into. A
 * default-constructed ref is invalid and any use of it (or of a ref
 * minted by a *different* Builder) is a fatal error.
 */
struct TensorRef
{
    std::uint32_t tid = ~std::uint32_t(0); ///< Builder tensor index
    std::uint64_t owner = 0;               ///< minting Builder's id

    bool valid() const { return tid != ~std::uint32_t(0); }
};

/** Op-by-op DAG builder; see file comment. */
class Builder
{
  public:
    explicit Builder(std::string name);

    // ------------------------------------------------------- sources

    /** Declare a graph input (no op emitted). */
    TensorRef input(TensorShape shape);

    // -------------------------------------------------- conv layers

    /** Conv + BiasAdd (+ optional Relu) on an NHWC activation. */
    TensorRef conv2d(TensorRef x, std::int64_t k, std::int64_t c_out,
                     std::int64_t stride, bool relu = true);

    /** Transposed convolution (lowered to Conv2DBackpropInput,
     *  as TensorFlow does) + BiasAdd (+ optional Relu). */
    TensorRef deconv2d(TensorRef x, std::int64_t k, std::int64_t c_out,
                       std::int64_t up, bool relu = true);

    /** Max pooling, square window k, stride s. */
    TensorRef maxPool(TensorRef x, std::int64_t k, std::int64_t stride);

    /** Max pooling with a non-square window and per-axis strides. */
    TensorRef maxPool(TensorRef x, std::int64_t kh, std::int64_t kw,
                      std::int64_t sh, std::int64_t sw);

    /** Average pooling, square window k, stride s. */
    TensorRef avgPool(TensorRef x, std::int64_t k, std::int64_t stride);

    /** Average pooling with a non-square window and strides. */
    TensorRef avgPool(TensorRef x, std::int64_t kh, std::int64_t kw,
                      std::int64_t sh, std::int64_t sw);

    // ----------------------------------------- dense / matmul layers

    /** Fully connected: MatMul + BiasAdd (+ optional Relu). Rank-2
     *  input required; use flatten() first for NHWC activations. */
    TensorRef dense(TensorRef x, std::int64_t units, bool relu = true);

    /** Activation x activation matmul ([m,k] x [k,n]), e.g. the
     *  QK^T / attention-weighted-value products of an attention
     *  block. Both operands get gradients in trainingStep(). */
    TensorRef matmul(TensorRef a, TensorRef b);

    // ------------------------------------------- normalization, etc.

    /** Batch normalization over the activation. */
    TensorRef batchNorm(TensorRef x);

    /** Layer normalization (transformer blocks). Same cost family as
     *  BatchNorm -- per-element mean/var/scale work -- but labelled
     *  as LayerNorm and valid on rank-2 activations. */
    TensorRef layerNorm(TensorRef x);

    /** Dropout. */
    TensorRef dropout(TensorRef x);

    /** Collapse to [N, elems/N]. */
    TensorRef flatten(TensorRef x);

    /** Transpose a rank-2 activation (data movement). */
    TensorRef transpose(TensorRef x);

    /** Slice touching the whole activation (input pipelines). */
    TensorRef slice(TensorRef x);

    /** Concat (rough model: touches the activation once). */
    TensorRef concat(TensorRef x);

    // ------------------------------------------------ elementwise ops

    /** Elementwise add of two same-shaped tensors (residual links). */
    TensorRef add(TensorRef a, TensorRef b);

    /** Elementwise mul of two same-shaped tensors (gating). */
    TensorRef mul(TensorRef a, TensorRef b);

    /** Unary elementwise Mul against an implicit same-shaped tensor
     *  (GAN loss plumbing; CnnBuilder::mul compatibility). */
    TensorRef mulChain(TensorRef x);

    /** Standalone activations. */
    TensorRef relu(TensorRef x);
    TensorRef tanh(TensorRef x);
    TensorRef sigmoid(TensorRef x);

    /** Softmax over the last dimension of a rank-2 activation
     *  (attention weights; not the training-loss softmax). */
    TensorRef softmax(TensorRef x);

    // ------------------------------------------------- escape hatch

    /**
     * Append a raw lowered op (no tape entry, no autodiff). This is
     * how recurrent built-ins (LSTM, Word2vec) express their custom
     * backward structure through the Builder while keeping their
     * exact historical op sequence.
     */
    OpId rawOp(OpType type, std::string label, CostStructure cost,
               FixedParallelism parallelism,
               std::vector<OpId> inputs = {});

    // ------------------------------------------------------ queries

    /** @return the shape of @p ref (fatal on a foreign/invalid ref). */
    const TensorShape &shape(TensorRef ref) const;

    /** @return the op producing @p ref (invalidOp for inputs). */
    OpId producer(TensorRef ref) const;

    /** @return the graph built so far (inspection; keeps building). */
    const Graph &graph() const { return _graph; }

    // ----------------------------------------------------- finishing

    /**
     * Close the graph as one training step: softmax loss over
     * @p logits, reverse-mode backward pass over every tape entry on
     * the loss path, and one optimizer op per parameter tensor.
     * @param extra_loss_muls small Mul ops around the loss (GAN-style
     *        training; see CnnBuilder::finish)
     */
    Graph trainingStep(TensorRef logits,
                       Optimizer optimizer = Optimizer::Adam,
                       std::size_t extra_loss_muls = 0);

    /** Close the graph forward-only (inference workload). */
    Graph finishForward();

  private:
    enum class TapeKind
    {
        Conv, Deconv, MaxPool, AvgPool, BatchNorm, LayerNorm, Dropout,
        Dense, MatMul2, Add2, Mul2, MulChain, Slice, Concat, Flatten,
        Transpose, Softmax, Relu, Tanh, Sigmoid
    };

    struct TensorEntry
    {
        OpId op = invalidOp;  ///< producing op; invalidOp for inputs
        TensorShape shape;
        std::int32_t record = -1; ///< tape index; -1 for inputs
    };

    struct TapeRecord
    {
        TapeKind kind;
        std::uint32_t in0 = ~std::uint32_t(0); ///< primary input tid
        std::uint32_t in1 = ~std::uint32_t(0); ///< second input tid
        std::uint32_t out = ~std::uint32_t(0); ///< output tid
        TensorShape inShape;
        TensorShape outShape;
        std::int64_t kH = 0, kW = 0;  ///< kernel/window size
        std::int64_t sH = 1, sW = 1;  ///< strides
        std::int64_t cOut = 0;        ///< conv channels / dense units
        bool relu = false;
        OpId fwdOp = invalidOp; ///< main forward op
        OpId actOp = invalidOp; ///< fused relu op if any
        std::int64_t params = 0;
        std::string label;
    };

    std::string layerLabel(const char *base);
    const TensorEntry &entry(TensorRef ref) const;
    TensorRef newTensor(OpId op, TensorShape shape,
                        std::int32_t record);
    std::vector<OpId> depsOf(TensorRef ref) const;
    TensorRef pool(TensorRef x, TapeKind kind, std::int64_t kh,
                   std::int64_t kw, std::int64_t sh, std::int64_t sw);
    TensorRef activation(TensorRef x, TapeKind kind, OpType type,
                         const char *base);
    TensorRef norm(TensorRef x, TapeKind kind, const char *base,
                   const char *op_suffix);
    void emitOptimizer(Optimizer optimizer, const std::string &label,
                       std::int64_t params, OpId grad_op);

    Graph _graph;
    std::uint64_t _id; ///< distinguishes refs across Builder instances
    std::vector<TensorEntry> _tensors;
    std::vector<TapeRecord> _tape;
    std::size_t _conv_index = 0;
    std::size_t _fc_index = 0;
    std::size_t _misc_index = 0;
    bool _finished = false;
};

} // namespace hpim::nn

#endif // HPIM_NN_GRAPH_BUILDER_HH
