/**
 * @file
 * Versioned JSON serialization for nn::Graph: the on-disk workload
 * format behind `hpim_cli --graph`, the sweep engine's `--graph`
 * flag, and the hpim_serve `graph` payload.
 *
 * A graph document is one JSON object:
 *
 *   {"schema_version":1,
 *    "name":"my-model",
 *    "ops":[{"type":"MatMul","label":"fc1/MatMul",
 *            "muls":1048576,"adds":1048576,"specials":0,
 *            "bytes_read":16384,"bytes_written":4096,
 *            "units_per_lane":64,"lanes":1024,
 *            "inputs":[0,2]},
 *           ...]}
 *
 * Op "type" strings are the profiler names from nn/op_type.cc
 * (opName()); "inputs" are indices of earlier ops in the array, so a
 * valid document is topologically ordered by construction -- exactly
 * the invariant Graph::add enforces.
 *
 * The loader is strict in the report_io tradition: every field must
 * appear exactly once, unknown fields, bad types, non-finite or
 * negative costs, forward/self references and unknown op names are
 * all rejected with a typed GraphParseError carrying the 1-based
 * source line and the offending field -- never an abort, because the
 * input is a user file, not program state. Writing goes through the
 * shared json::Writer (compact, %.17g lossless doubles), so a
 * load -> save cycle of a saved document is byte-identical, and
 * reconstruction replays Graph::add in document order, so the loaded
 * graph's signature() equals the saved graph's -- sim::MemoCache and
 * the sweep journal key on it unchanged.
 */

#ifndef HPIM_NN_GRAPH_IO_HH
#define HPIM_NN_GRAPH_IO_HH

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "nn/graph.hh"

namespace hpim::nn {

/** Version of the serialized graph schema. */
constexpr int graphSchemaVersion = 1;

/** A graph document that cannot be parsed or validated. */
struct GraphParseError : std::runtime_error
{
    GraphParseError(const std::string &message,
                    std::size_t line_number = 0,
                    std::string field_name = {})
        : std::runtime_error(
              "graph parse error: " + message
              + (field_name.empty() ? ""
                                    : " (field '" + field_name + "')")
              + (line_number ? " at line " + std::to_string(line_number)
                             : "")),
          line(line_number), field(std::move(field_name))
    {
    }

    /** @return @p err with " in '<path>'" appended, keeping the
     *  structured line/field untouched (loadGraphFile context). */
    static GraphParseError
    inFile(const GraphParseError &err, const std::string &path)
    {
        return GraphParseError(raw_t{},
                               std::string(err.what()) + " in '" + path
                                   + "'",
                               err.line, err.field);
    }

    std::size_t line;  ///< 1-based line, 0 when unknown
    std::string field; ///< offending field path, may be empty

  private:
    struct raw_t
    {
    };

    GraphParseError(raw_t, const std::string &what,
                    std::size_t line_number, std::string field_name)
        : std::runtime_error(what), line(line_number),
          field(std::move(field_name))
    {
    }
};

/** Write @p graph as one compact JSON document (no trailing newline). */
void saveGraph(std::ostream &os, const Graph &graph);

/** @return @p graph as a compact JSON document string. */
std::string graphToJson(const Graph &graph);

/** Parse and validate one graph document. Throws GraphParseError. */
Graph loadGraph(const std::string &text);

/**
 * Read @p path and load the graph it holds. Throws GraphParseError
 * (with the file's name in the message) for unreadable files as well
 * as malformed documents.
 */
Graph loadGraphFile(const std::string &path);

/** Write @p graph to @p path (trailing newline included). Throws
 *  GraphParseError when the file cannot be written. */
void saveGraphFile(const std::string &path, const Graph &graph);

} // namespace hpim::nn

#endif // HPIM_NN_GRAPH_IO_HH
