#include "nn/builder.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hpim::nn {

namespace {

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

CnnBuilder::CnnBuilder(std::string name, TensorShape input)
    : _graph(std::move(name)), _shape(std::move(input))
{
}

std::string
CnnBuilder::layerLabel(const char *base)
{
    return std::string(base) + "_" + std::to_string(++_misc_index);
}

CnnBuilder &
CnnBuilder::conv(std::int64_t k, std::int64_t c_out, std::int64_t stride,
                 bool relu)
{
    fatal_if(_shape.rank() != 4, "conv needs an NHWC activation");
    LayerRecord rec;
    rec.kind = LayerKind::Conv;
    rec.inShape = _shape;
    rec.k = k;
    rec.stride = stride;
    rec.cOut = c_out;
    rec.relu = relu;
    rec.label = "conv" + std::to_string(++_conv_index);
    rec.params = k * k * _shape.dim(3) * c_out + c_out;

    std::vector<OpId> deps;
    if (_tail != invalidOp)
        deps.push_back(_tail);

    CostStructure cost = conv2dCost(_shape, k, c_out, stride);
    std::int64_t reduction = k * k; // one spatial tap tree, paper-style
    TensorShape out{_shape.dim(0), ceilDiv(_shape.dim(1), stride),
                    ceilDiv(_shape.dim(2), stride), c_out};
    double lanes = static_cast<double>(out.elems());
    OpId conv_id = _graph.add(
        OpType::Conv2D, rec.label + "/Conv2D", cost,
        fixedParallelism(OpType::Conv2D, reduction, lanes), deps);

    OpId bias_id = _graph.add(
        OpType::BiasAdd, rec.label + "/BiasAdd",
        biasAddCost(out, c_out),
        fixedParallelism(OpType::BiasAdd, 1, double(out.elems())),
        {conv_id});

    rec.fwdOp = bias_id;
    OpId act = bias_id;
    if (relu) {
        act = _graph.add(OpType::Relu, rec.label + "/Relu",
                         activationCost(OpType::Relu, out),
                         fixedParallelism(OpType::Relu, 1, 0.0),
                         {bias_id});
        rec.actOp = act;
    }

    rec.outShape = out;
    _shape = out;
    pushActivation(act);
    _layers.push_back(std::move(rec));
    return *this;
}

CnnBuilder &
CnnBuilder::deconv(std::int64_t k, std::int64_t c_out, std::int64_t up,
                   bool relu)
{
    fatal_if(_shape.rank() != 4, "deconv needs an NHWC activation");
    LayerRecord rec;
    rec.kind = LayerKind::Deconv;
    rec.inShape = _shape;
    rec.k = k;
    rec.stride = up;
    rec.cOut = c_out;
    rec.relu = relu;
    rec.label = "deconv" + std::to_string(++_conv_index);
    rec.params = k * k * _shape.dim(3) * c_out + c_out;

    std::vector<OpId> deps;
    if (_tail != invalidOp)
        deps.push_back(_tail);

    TensorShape out{_shape.dim(0), _shape.dim(1) * up, _shape.dim(2) * up,
                    c_out};
    // conv2d_transpose == Conv2DBackpropInput on the output geometry.
    CostStructure cost = conv2dBackpropInputCost(out, k, _shape.dim(3), up);
    OpId id = _graph.add(
        OpType::Conv2DBackpropInput, rec.label + "/Conv2DBackpropInput",
        cost,
        fixedParallelism(OpType::Conv2DBackpropInput, k * k,
                         double(out.elems())),
        deps);

    OpId bias_id = _graph.add(
        OpType::BiasAdd, rec.label + "/BiasAdd", biasAddCost(out, c_out),
        fixedParallelism(OpType::BiasAdd, 1, double(out.elems())), {id});

    rec.fwdOp = bias_id;
    OpId act = bias_id;
    if (relu) {
        act = _graph.add(OpType::Relu, rec.label + "/Relu",
                         activationCost(OpType::Relu, out),
                         fixedParallelism(OpType::Relu, 1, 0.0),
                         {bias_id});
        rec.actOp = act;
    }

    rec.outShape = out;
    _shape = out;
    pushActivation(act);
    _layers.push_back(std::move(rec));
    return *this;
}

CnnBuilder &
CnnBuilder::maxPool(std::int64_t k, std::int64_t stride)
{
    LayerRecord rec;
    rec.kind = LayerKind::MaxPool;
    rec.inShape = _shape;
    rec.k = k;
    rec.stride = stride;
    rec.label = layerLabel("maxpool");

    OpId id = _graph.add(OpType::MaxPool, rec.label + "/MaxPool",
                         poolCost(OpType::MaxPool, _shape, k, stride),
                         fixedParallelism(OpType::MaxPool, 1, 0.0),
                         tailDeps());
    rec.fwdOp = id;
    TensorShape out{_shape.dim(0), ceilDiv(_shape.dim(1), stride),
                    ceilDiv(_shape.dim(2), stride), _shape.dim(3)};
    rec.outShape = out;
    _shape = out;
    pushActivation(id);
    _layers.push_back(std::move(rec));
    return *this;
}

CnnBuilder &
CnnBuilder::avgPool(std::int64_t k, std::int64_t stride)
{
    LayerRecord rec;
    rec.kind = LayerKind::AvgPool;
    rec.inShape = _shape;
    rec.k = k;
    rec.stride = stride;
    rec.label = layerLabel("avgpool");

    OpId id = _graph.add(OpType::AvgPool, rec.label + "/AvgPool",
                         poolCost(OpType::AvgPool, _shape, k, stride),
                         fixedParallelism(OpType::AvgPool, 1, 0.0),
                         tailDeps());
    rec.fwdOp = id;
    TensorShape out{_shape.dim(0), ceilDiv(_shape.dim(1), stride),
                    ceilDiv(_shape.dim(2), stride), _shape.dim(3)};
    rec.outShape = out;
    _shape = out;
    pushActivation(id);
    _layers.push_back(std::move(rec));
    return *this;
}

CnnBuilder &
CnnBuilder::batchNorm()
{
    LayerRecord rec;
    rec.kind = LayerKind::BatchNorm;
    rec.inShape = _shape;
    rec.outShape = _shape;
    rec.label = layerLabel("bn");
    rec.params = 2 * _shape.dim(_shape.rank() - 1);

    OpId id = _graph.add(
        OpType::BatchNorm, rec.label + "/FusedBatchNorm",
        batchNormCost(OpType::BatchNorm, _shape),
        fixedParallelism(OpType::BatchNorm, 1, double(_shape.elems())),
        tailDeps());
    rec.fwdOp = id;
    pushActivation(id);
    _layers.push_back(std::move(rec));
    return *this;
}

CnnBuilder &
CnnBuilder::dropout()
{
    LayerRecord rec;
    rec.kind = LayerKind::Dropout;
    rec.inShape = _shape;
    rec.outShape = _shape;
    rec.label = layerLabel("dropout");

    OpId id = _graph.add(OpType::Dropout, rec.label + "/Dropout",
                         dropoutCost(OpType::Dropout, _shape),
                         fixedParallelism(OpType::Dropout, 1, 0.0),
                         tailDeps());
    rec.fwdOp = id;
    pushActivation(id);
    _layers.push_back(std::move(rec));
    return *this;
}

CnnBuilder &
CnnBuilder::flatten()
{
    LayerRecord rec;
    rec.kind = LayerKind::Flatten;
    rec.inShape = _shape;
    rec.label = layerLabel("flatten");

    OpId id = _graph.add(
        OpType::Reshape, rec.label + "/Reshape",
        dataMovementCost(0.0), // metadata-only in TF
        fixedParallelism(OpType::Reshape, 1, 0.0), tailDeps());
    rec.fwdOp = id;
    TensorShape out{_shape.dim(0), _shape.elems() / _shape.dim(0)};
    rec.outShape = out;
    _shape = out;
    pushActivation(id);
    _layers.push_back(std::move(rec));
    return *this;
}

CnnBuilder &
CnnBuilder::fc(std::int64_t units, bool relu)
{
    if (_shape.rank() != 2)
        flatten();

    LayerRecord rec;
    rec.kind = LayerKind::Fc;
    rec.inShape = _shape;
    rec.cOut = units;
    rec.relu = relu;
    rec.label = "fc" + std::to_string(++_fc_index);
    std::int64_t in_dim = _shape.dim(1);
    rec.params = in_dim * units + units;

    OpId mm = _graph.add(
        OpType::MatMul, rec.label + "/MatMul",
        matmulCost(_shape.dim(0), in_dim, units),
        fixedParallelism(OpType::MatMul, std::min<std::int64_t>(in_dim, 64),
                         double(_shape.dim(0) * units)),
        tailDeps());

    TensorShape out{_shape.dim(0), units};
    OpId bias_id = _graph.add(
        OpType::BiasAdd, rec.label + "/BiasAdd", biasAddCost(out, units),
        fixedParallelism(OpType::BiasAdd, 1, double(out.elems())), {mm});

    rec.fwdOp = bias_id;
    OpId act = bias_id;
    if (relu) {
        act = _graph.add(OpType::Relu, rec.label + "/Relu",
                         activationCost(OpType::Relu, out),
                         fixedParallelism(OpType::Relu, 1, 0.0),
                         {bias_id});
        rec.actOp = act;
    }
    rec.outShape = out;
    _shape = out;
    pushActivation(act);
    _layers.push_back(std::move(rec));
    return *this;
}

CnnBuilder &
CnnBuilder::mul()
{
    LayerRecord rec;
    rec.kind = LayerKind::Mul;
    rec.inShape = _shape;
    rec.outShape = _shape;
    rec.label = layerLabel("mul");

    OpId id = _graph.add(
        OpType::Mul, rec.label + "/Mul",
        elementwiseCost(OpType::Mul, _shape),
        fixedParallelism(OpType::Mul, 1, double(_shape.elems())),
        tailDeps());
    rec.fwdOp = id;
    pushActivation(id);
    _layers.push_back(std::move(rec));
    return *this;
}

CnnBuilder &
CnnBuilder::slice()
{
    LayerRecord rec;
    rec.kind = LayerKind::Slice;
    rec.inShape = _shape;
    rec.outShape = _shape;
    rec.label = layerLabel("slice");

    OpId id = _graph.add(
        OpType::Slice, rec.label + "/Slice",
        dataMovementCost(double(_shape.bytes())),
        fixedParallelism(OpType::Slice, 1, 0.0),
tailDeps());
    rec.fwdOp = id;
    pushActivation(id);
    _layers.push_back(std::move(rec));
    return *this;
}

CnnBuilder &
CnnBuilder::concat()
{
    LayerRecord rec;
    rec.kind = LayerKind::Concat;
    rec.inShape = _shape;
    rec.outShape = _shape;
    rec.label = layerLabel("concat");

    OpId id = _graph.add(OpType::Concat, rec.label + "/Concat",
                         dataMovementCost(double(_shape.bytes())),
                         fixedParallelism(OpType::Concat, 1, 0.0),
                         tailDeps());
    rec.fwdOp = id;
    pushActivation(id);
    _layers.push_back(std::move(rec));
    return *this;
}

Graph
CnnBuilder::finishForwardOnly()
{
    return std::move(_graph);
}

Graph
CnnBuilder::finish(std::size_t extra_loss_muls)
{
    fatal_if(_layers.empty(), "cannot finish an empty model");

    // ---- Loss: softmax + grad over the final activation.
    std::int64_t batch = _shape.dim(0);
    std::int64_t classes = _shape.elems() / batch;
    OpId loss = _graph.add(
        OpType::Softmax, "loss/Softmax",
        softmaxCost(OpType::Softmax, batch, classes),
        fixedParallelism(OpType::Softmax, 1, 0.0), {_tail});

    // GAN-style losses spray many small Mul ops around the loss.
    OpId mul_tail = loss;
    TensorShape loss_shape{batch, classes};
    for (std::size_t i = 0; i < extra_loss_muls; ++i) {
        mul_tail = _graph.add(
            OpType::Mul, "loss/Mul_" + std::to_string(i),
            elementwiseCost(OpType::Mul, loss_shape),
            fixedParallelism(OpType::Mul, 1, double(loss_shape.elems())),
            {mul_tail});
    }

    OpId grad = _graph.add(
        OpType::SoftmaxGrad, "loss/SoftmaxGrad",
        softmaxCost(OpType::SoftmaxGrad, batch, classes),
        fixedParallelism(OpType::SoftmaxGrad, 1, 0.0), {mul_tail});

    // ---- Backward pass, last layer to first.
    std::vector<OpId> grad_ops; // parameter-gradient producers
    std::vector<std::int64_t> grad_params;
    std::vector<std::string> grad_labels;

    for (auto it = _layers.rbegin(); it != _layers.rend(); ++it) {
        const LayerRecord &rec = *it;
        switch (rec.kind) {
          case LayerKind::Conv:
          case LayerKind::Deconv: {
            if (rec.relu) {
                grad = _graph.add(
                    OpType::ReluGrad, rec.label + "/ReluGrad",
                    activationCost(OpType::ReluGrad, rec.outShape),
                    fixedParallelism(OpType::ReluGrad, 1, 0.0),
                    {grad, rec.actOp});
            }
            OpId bias_grad = _graph.add(
                OpType::BiasAddGrad, rec.label + "/BiasAddGrad",
                biasAddGradCost(rec.outShape, rec.cOut),
                fixedParallelism(OpType::BiasAddGrad, 8,
                                 double(rec.cOut)),
                {grad});
            grad_ops.push_back(bias_grad);
            grad_params.push_back(rec.cOut);
            grad_labels.push_back(rec.label + "/bias");

            OpId w_grad = _graph.add(
                OpType::Conv2DBackpropFilter,
                rec.label + "/Conv2DBackpropFilter",
                conv2dBackpropFilterCost(rec.inShape, rec.k, rec.cOut,
                                         rec.stride),
                fixedParallelism(OpType::Conv2DBackpropFilter,
                                 rec.k * rec.k,
                                 double(rec.params)),
                {grad, rec.fwdOp});
            grad_ops.push_back(w_grad);
            grad_params.push_back(rec.params - rec.cOut);
            grad_labels.push_back(rec.label + "/kernel");

            bool first_layer = (it + 1 == _layers.rend());
            if (!first_layer) {
                grad = _graph.add(
                    OpType::Conv2DBackpropInput,
                    rec.label + "/Conv2DBackpropInput",
                    conv2dBackpropInputCost(rec.inShape, rec.k, rec.cOut,
                                            rec.stride),
                    fixedParallelism(OpType::Conv2DBackpropInput,
                                     rec.k * rec.k,
                                     double(rec.inShape.elems())),
                    {grad});
            }
            break;
          }
          case LayerKind::Fc: {
            if (rec.relu) {
                grad = _graph.add(
                    OpType::ReluGrad, rec.label + "/ReluGrad",
                    activationCost(OpType::ReluGrad, rec.outShape),
                    fixedParallelism(OpType::ReluGrad, 1, 0.0),
                    {grad, rec.actOp});
            }
            OpId bias_grad = _graph.add(
                OpType::BiasAddGrad, rec.label + "/BiasAddGrad",
                biasAddGradCost(rec.outShape, rec.cOut),
                fixedParallelism(OpType::BiasAddGrad, 8,
                                 double(rec.cOut)),
                {grad});
            grad_ops.push_back(bias_grad);
            grad_params.push_back(rec.cOut);
            grad_labels.push_back(rec.label + "/bias");

            std::int64_t in_dim = rec.inShape.dim(1);
            std::int64_t b = rec.inShape.dim(0);
            OpId w_grad = _graph.add(
                OpType::MatMulGradWeights, rec.label + "/MatMul_grad_w",
                matmulCost(in_dim, b, rec.cOut),
                fixedParallelism(OpType::MatMulGradWeights,
                                 std::min<std::int64_t>(b, 64),
                                 double(in_dim * rec.cOut)),
                {grad, rec.fwdOp});
            grad_ops.push_back(w_grad);
            grad_params.push_back(in_dim * rec.cOut);
            grad_labels.push_back(rec.label + "/kernel");

            bool first_layer = (it + 1 == _layers.rend());
            if (!first_layer) {
                grad = _graph.add(
                    OpType::MatMulGradInputs,
                    rec.label + "/MatMul_grad_x",
                    matmulCost(b, rec.cOut, in_dim),
                    fixedParallelism(OpType::MatMulGradInputs,
                                     std::min<std::int64_t>(rec.cOut, 64),
                                     double(b * in_dim)),
                    {grad});
            }
            break;
          }
          case LayerKind::MaxPool:
            grad = _graph.add(
                OpType::MaxPoolGrad, rec.label + "/MaxPoolGrad",
                poolCost(OpType::MaxPoolGrad, rec.inShape, rec.k,
                         rec.stride),
                fixedParallelism(OpType::MaxPoolGrad, 1, 0.0),
                {grad, rec.fwdOp});
            break;
          case LayerKind::AvgPool:
            grad = _graph.add(
                OpType::AvgPoolGrad, rec.label + "/AvgPoolGrad",
                poolCost(OpType::AvgPoolGrad, rec.inShape, rec.k,
                         rec.stride),
                fixedParallelism(OpType::AvgPoolGrad, 1, 0.0),
                {grad});
            break;
          case LayerKind::BatchNorm: {
            grad = _graph.add(
                OpType::BatchNormGrad, rec.label + "/FusedBatchNormGrad",
                batchNormCost(OpType::BatchNormGrad, rec.inShape),
                fixedParallelism(OpType::BatchNormGrad, 1,
                                 double(rec.inShape.elems())),
                {grad, rec.fwdOp});
            grad_ops.push_back(grad);
            grad_params.push_back(rec.params);
            grad_labels.push_back(rec.label + "/scale_offset");
            break;
          }
          case LayerKind::Dropout:
            grad = _graph.add(
                OpType::DropoutGrad, rec.label + "/DropoutGrad",
                dropoutCost(OpType::DropoutGrad, rec.inShape),
                fixedParallelism(OpType::DropoutGrad, 1, 0.0),
                {grad, rec.fwdOp});
            break;
          case LayerKind::Mul:
            grad = _graph.add(
                OpType::Mul, rec.label + "/MulGrad",
                elementwiseCost(OpType::Mul, rec.inShape),
                fixedParallelism(OpType::Mul, 1,
                                 double(rec.inShape.elems())),
                {grad});
            break;
          case LayerKind::Slice:
          case LayerKind::Concat:
            grad = _graph.add(
                OpType::Slice, rec.label + "/SliceGrad",
                dataMovementCost(double(rec.inShape.bytes())),
                fixedParallelism(OpType::Slice, 1, 0.0), {grad});
            break;
          case LayerKind::Flatten:
            // Reshape gradients are metadata-only.
            break;
        }
    }

    // ---- Optimizer: one ApplyAdam per parameter tensor.
    for (std::size_t i = 0; i < grad_ops.size(); ++i) {
        _graph.add(OpType::ApplyAdam, grad_labels[i] + "/ApplyAdam",
                   applyAdamCost(grad_params[i]),
                   fixedParallelism(OpType::ApplyAdam, 1, 0.0),
                   {grad_ops[i]});
    }

    return std::move(_graph);
}

} // namespace hpim::nn
