#include "nn/builder.hh"

namespace hpim::nn {

CnnBuilder::CnnBuilder(std::string name, TensorShape input)
    : _b(std::move(name)), _cur(_b.input(std::move(input)))
{
}

CnnBuilder &
CnnBuilder::conv(std::int64_t k, std::int64_t c_out, std::int64_t stride,
                 bool relu)
{
    _cur = _b.conv2d(_cur, k, c_out, stride, relu);
    return *this;
}

CnnBuilder &
CnnBuilder::deconv(std::int64_t k, std::int64_t c_out, std::int64_t up,
                   bool relu)
{
    _cur = _b.deconv2d(_cur, k, c_out, up, relu);
    return *this;
}

CnnBuilder &
CnnBuilder::maxPool(std::int64_t k, std::int64_t stride)
{
    _cur = _b.maxPool(_cur, k, stride);
    return *this;
}

CnnBuilder &
CnnBuilder::avgPool(std::int64_t k, std::int64_t stride)
{
    _cur = _b.avgPool(_cur, k, stride);
    return *this;
}

CnnBuilder &
CnnBuilder::batchNorm()
{
    _cur = _b.batchNorm(_cur);
    return *this;
}

CnnBuilder &
CnnBuilder::dropout()
{
    _cur = _b.dropout(_cur);
    return *this;
}

CnnBuilder &
CnnBuilder::flatten()
{
    _cur = _b.flatten(_cur);
    return *this;
}

CnnBuilder &
CnnBuilder::fc(std::int64_t units, bool relu)
{
    if (_b.shape(_cur).rank() != 2)
        _cur = _b.flatten(_cur);
    _cur = _b.dense(_cur, units, relu);
    return *this;
}

CnnBuilder &
CnnBuilder::mul()
{
    _cur = _b.mulChain(_cur);
    return *this;
}

CnnBuilder &
CnnBuilder::slice()
{
    _cur = _b.slice(_cur);
    return *this;
}

CnnBuilder &
CnnBuilder::concat()
{
    _cur = _b.concat(_cur);
    return *this;
}

Graph
CnnBuilder::finishForwardOnly()
{
    return _b.finishForward();
}

Graph
CnnBuilder::finish(std::size_t extra_loss_muls)
{
    return _b.trainingStep(_cur, Optimizer::Adam, extra_loss_muls);
}

} // namespace hpim::nn
