/**
 * @file
 * Training-graph builder.
 *
 * Records forward layers fluently, then emits the TensorFlow-style
 * backward pass (Conv2DBackpropFilter/Input, MatMulGrad*, BiasAddGrad,
 * ReluGrad, MaxPoolGrad, ...) and one ApplyAdam per parameter tensor,
 * producing op mixes and invocation counts matching paper Table I.
 */

#ifndef HPIM_NN_BUILDER_HH
#define HPIM_NN_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.hh"
#include "nn/tensor_shape.hh"

namespace hpim::nn {

/** Builds a CNN/MLP training-step graph layer by layer. */
class CnnBuilder
{
  public:
    /**
     * @param name graph name
     * @param input NHWC input batch shape
     */
    CnnBuilder(std::string name, TensorShape input);

    /** Conv + BiasAdd (+ optional Relu). Updates the running shape. */
    CnnBuilder &conv(std::int64_t k, std::int64_t c_out,
                     std::int64_t stride, bool relu = true);

    /**
     * Transposed convolution (generator upsampling). TensorFlow lowers
     * conv2d_transpose to Conv2DBackpropInput, so the forward op here
     * is Conv2DBackpropInput -- as in the paper's DCGAN profile.
     */
    CnnBuilder &deconv(std::int64_t k, std::int64_t c_out,
                       std::int64_t up, bool relu = true);

    /** Max pooling window k, stride s. */
    CnnBuilder &maxPool(std::int64_t k, std::int64_t stride);

    /** Average pooling window k, stride s. */
    CnnBuilder &avgPool(std::int64_t k, std::int64_t stride);

    /** Batch normalization over the running shape. */
    CnnBuilder &batchNorm();

    /** Dropout over the running shape. */
    CnnBuilder &dropout();

    /** Collapse spatial dims ([N, H, W, C] -> [N, H*W*C]). */
    CnnBuilder &flatten();

    /** Fully connected layer (+ optional Relu). */
    CnnBuilder &fc(std::int64_t units, bool relu = true);

    /** Elementwise Mul against a same-shaped tensor (GAN losses). */
    CnnBuilder &mul();

    /** Slice op touching the running activation (input pipelines). */
    CnnBuilder &slice();

    /** Concat (rough model: touches the running activation once). */
    CnnBuilder &concat();

    /** @return current activation shape. */
    const TensorShape &shape() const { return _shape; }

    /** @return current activation op id (invalidOp before any layer). */
    OpId tail() const { return _tail; }

    /**
     * Finish the step: softmax loss over the last dim, full backward
     * pass, and ApplyAdam for every parameter tensor.
     * @param extra_loss_muls number of small Mul ops in the loss
     *        (GAN training has many; see DCGAN Table I row "Mul")
     */
    Graph finish(std::size_t extra_loss_muls = 0);

    /** Finish without softmax/backward (inference-style; tests). */
    Graph finishForwardOnly();

  private:
    enum class LayerKind
    {
        Conv, Deconv, MaxPool, AvgPool, BatchNorm, Dropout, Fc,
        Mul, Slice, Concat, Flatten
    };

    struct LayerRecord
    {
        LayerKind kind;
        TensorShape inShape;
        TensorShape outShape;
        std::int64_t k = 0;       ///< kernel/window size
        std::int64_t stride = 1;
        std::int64_t cOut = 0;    ///< conv out channels / fc units
        bool relu = false;
        OpId fwdOp = invalidOp;   ///< main forward op
        OpId actOp = invalidOp;   ///< relu op if any
        std::int64_t params = 0;  ///< trainable parameter count
        std::string label;
    };

    std::string layerLabel(const char *base);
    void pushActivation(OpId id) { _tail = id; }

    /** Dependence list on the current activation (empty at start). */
    std::vector<OpId>
    tailDeps() const
    {
        return _tail == invalidOp ? std::vector<OpId>{}
                                  : std::vector<OpId>{_tail};
    }

    Graph _graph;
    TensorShape _shape;
    OpId _tail = invalidOp;
    std::vector<LayerRecord> _layers;
    std::size_t _conv_index = 0;
    std::size_t _fc_index = 0;
    std::size_t _misc_index = 0;
};

} // namespace hpim::nn

#endif // HPIM_NN_BUILDER_HH
