/**
 * @file
 * Layer-level training-graph builder.
 *
 * CnnBuilder is the fluent, single-activation-chain convenience shell
 * over the op-by-op nn::Builder (nn/graph_builder.hh): it threads one
 * running activation through conv/pool/fc/... layers and finishes with
 * the TensorFlow-style backward pass (Conv2DBackpropFilter/Input,
 * MatMulGrad*, BiasAddGrad, ReluGrad, MaxPoolGrad, ...) plus one
 * ApplyAdam per parameter tensor, producing op mixes and invocation
 * counts matching paper Table I. All op emission lives in Builder;
 * CnnBuilder just forwards, so both produce byte-identical graphs for
 * the chains CnnBuilder can express.
 */

#ifndef HPIM_NN_BUILDER_HH
#define HPIM_NN_BUILDER_HH

#include <cstdint>
#include <string>

#include "nn/graph.hh"
#include "nn/graph_builder.hh"
#include "nn/tensor_shape.hh"

namespace hpim::nn {

/** Builds a CNN/MLP training-step graph layer by layer. */
class CnnBuilder
{
  public:
    /**
     * @param name graph name
     * @param input NHWC input batch shape
     */
    CnnBuilder(std::string name, TensorShape input);

    /** Conv + BiasAdd (+ optional Relu). Updates the running shape. */
    CnnBuilder &conv(std::int64_t k, std::int64_t c_out,
                     std::int64_t stride, bool relu = true);

    /**
     * Transposed convolution (generator upsampling). TensorFlow lowers
     * conv2d_transpose to Conv2DBackpropInput, so the forward op here
     * is Conv2DBackpropInput -- as in the paper's DCGAN profile.
     */
    CnnBuilder &deconv(std::int64_t k, std::int64_t c_out,
                       std::int64_t up, bool relu = true);

    /** Max pooling window k, stride s. */
    CnnBuilder &maxPool(std::int64_t k, std::int64_t stride);

    /** Average pooling window k, stride s. */
    CnnBuilder &avgPool(std::int64_t k, std::int64_t stride);

    /** Batch normalization over the running shape. */
    CnnBuilder &batchNorm();

    /** Dropout over the running shape. */
    CnnBuilder &dropout();

    /** Collapse spatial dims ([N, H, W, C] -> [N, H*W*C]). */
    CnnBuilder &flatten();

    /** Fully connected layer (+ optional Relu). */
    CnnBuilder &fc(std::int64_t units, bool relu = true);

    /** Elementwise Mul against a same-shaped tensor (GAN losses). */
    CnnBuilder &mul();

    /** Slice op touching the running activation (input pipelines). */
    CnnBuilder &slice();

    /** Concat (rough model: touches the running activation once). */
    CnnBuilder &concat();

    /** @return current activation shape. */
    const TensorShape &shape() const { return _b.shape(_cur); }

    /** @return current activation op id (invalidOp before any layer). */
    OpId tail() const { return _b.producer(_cur); }

    /**
     * Finish the step: softmax loss over the last dim, full backward
     * pass, and ApplyAdam for every parameter tensor.
     * @param extra_loss_muls number of small Mul ops in the loss
     *        (GAN training has many; see DCGAN Table I row "Mul")
     */
    Graph finish(std::size_t extra_loss_muls = 0);

    /** Finish without softmax/backward (inference-style; tests). */
    Graph finishForwardOnly();

  private:
    Builder _b;
    TensorRef _cur;
};

} // namespace hpim::nn

#endif // HPIM_NN_BUILDER_HH
