/**
 * @file
 * Paper Fig. 14: energy with and without RC and OP, normalized to
 * Hetero PIM with both. Expectations: Hetero hardware without runtime
 * scheduling beats Progr/Fixed PIM by up to 2.7x; RC+OP reduce Hetero
 * energy by up to 3.9x more.
 *
 * Accepts every sweep-engine flag (parseSweepArgs): --jobs, --seed,
 * --journal, and --shard i/N for distributed runs whose shard
 * journals hpim_merge fuses back into the single-process table
 * (docs/SWEEP_ENGINE.md).
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

namespace {

hpim::rt::ExecutionReport
runHetero(bool rc, bool op, hpim::nn::ModelId model)
{
    auto config = hpim::baseline::makeHetero(true, rc, op);
    config.steps = 4;
    hpim::rt::HeteroRuntime runtime(config);
    return runtime.train(hpim::nn::buildModel(model)).execution;
}

/** The six columns of Fig. 14, in table order. */
hpim::rt::ExecutionReport
runVariant(hpim::nn::ModelId model, std::size_t variant)
{
    using hpim::baseline::SystemKind;
    switch (variant) {
      case 0:
        return hpim::baseline::runSystem(SystemKind::ProgrPimOnly,
                                         model);
      case 1:
        return hpim::baseline::runSystem(SystemKind::FixedPimOnly,
                                         model);
      case 2: return runHetero(false, false, model);
      case 3: return runHetero(true, false, model);
      case 4: return runHetero(false, true, model);
      default: return runHetero(true, true, model);
    }
}

constexpr std::size_t numVariants = 6;

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmtRatio;

    harness::banner(std::cout,
                    "Fig. 14: energy normalized to Hetero PIM w/ RC+OP");

    harness::TablePrinter table(
        {"model", "Progr PIM", "Fixed PIM", "Hetero (no RC/OP)",
         "Hetero +RC", "Hetero +OP", "Hetero +RC+OP",
         "no-RC-OP/full [<=3.9x]"});

    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    auto models = nn::cnnModels();
    std::uint64_t grid_hash = harness::hashString(
        "fig14 models x variants v1", 0xcbf29ce484222325ULL);
    for (auto model : models)
        grid_hash = harness::hashU64(
            static_cast<std::uint64_t>(model), grid_hash);
    grid_hash = harness::hashU64(numVariants, grid_hash);
    auto reports = runner.mapReports(
        models.size() * numVariants, grid_hash,
        [&models](std::size_t i, sim::Rng &) {
            return runVariant(models[i / numVariants],
                              i % numVariants);
        });

    for (std::size_t m = 0; m < models.size(); ++m) {
        nn::ModelId model = models[m];
        const auto *row = &reports[m * numVariants];
        const auto &progr = row[0];
        const auto &fixed = row[1];
        const auto &none = row[2];
        const auto &rc = row[3];
        const auto &op = row[4];
        const auto &both = row[5];
        double base = both.energyPerStepJ;
        table.addRow({nn::modelName(model),
                      fmtRatio(progr.energyPerStepJ / base),
                      fmtRatio(fixed.energyPerStepJ / base),
                      fmtRatio(none.energyPerStepJ / base),
                      fmtRatio(rc.energyPerStepJ / base),
                      fmtRatio(op.energyPerStepJ / base), "1.00x",
                      fmtRatio(none.energyPerStepJ / base)});
    }
    table.print(std::cout);
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
