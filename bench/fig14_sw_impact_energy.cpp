/**
 * @file
 * Paper Fig. 14: energy with and without RC and OP, normalized to
 * Hetero PIM with both. Expectations: Hetero hardware without runtime
 * scheduling beats Progr/Fixed PIM by up to 2.7x; RC+OP reduce Hetero
 * energy by up to 3.9x more.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

namespace {

hpim::rt::ExecutionReport
runHetero(bool rc, bool op, hpim::nn::ModelId model)
{
    auto config = hpim::baseline::makeHetero(true, rc, op);
    config.steps = 4;
    hpim::rt::HeteroRuntime runtime(config);
    return runtime.train(hpim::nn::buildModel(model)).execution;
}

} // namespace

int
main()
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmtRatio;

    harness::banner(std::cout,
                    "Fig. 14: energy normalized to Hetero PIM w/ RC+OP");

    harness::TablePrinter table(
        {"model", "Progr PIM", "Fixed PIM", "Hetero (no RC/OP)",
         "Hetero +RC", "Hetero +OP", "Hetero +RC+OP",
         "no-RC-OP/full [<=3.9x]"});

    for (nn::ModelId model : nn::cnnModels()) {
        auto progr =
            baseline::runSystem(SystemKind::ProgrPimOnly, model);
        auto fixed =
            baseline::runSystem(SystemKind::FixedPimOnly, model);
        auto none = runHetero(false, false, model);
        auto rc = runHetero(true, false, model);
        auto op = runHetero(false, true, model);
        auto both = runHetero(true, true, model);
        double base = both.energyPerStepJ;
        table.addRow({nn::modelName(model),
                      fmtRatio(progr.energyPerStepJ / base),
                      fmtRatio(fixed.energyPerStepJ / base),
                      fmtRatio(none.energyPerStepJ / base),
                      fmtRatio(rc.energyPerStepJ / base),
                      fmtRatio(op.energyPerStepJ / base), "1.00x",
                      fmtRatio(none.energyPerStepJ / base)});
    }
    table.print(std::cout);
    return 0;
}
