/**
 * @file
 * Paper Fig. 15: fixed-function PIM utilization with and without RC
 * and OP. Expectations: +RC improves utilization by up to 66%
 * (VGG-19); +OP adds up to 18% (AlexNet); with RC+OP utilization is
 * close to 100%.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

namespace {

double
utilization(bool rc, bool op, hpim::nn::ModelId model)
{
    auto config = hpim::baseline::makeHetero(true, rc, op);
    config.steps = 4;
    hpim::rt::HeteroRuntime runtime(config);
    return runtime.train(hpim::nn::buildModel(model))
        .execution.fixedUtilization;
}

} // namespace

int
main()
{
    using namespace hpim;
    using harness::fmtPct;

    harness::banner(std::cout,
                    "Fig. 15: fixed-PIM utilization w/ and w/o RC & OP");

    harness::TablePrinter table({"model", "no RC/OP", "+RC", "+OP",
                                 "+RC+OP [~100%]"});
    for (nn::ModelId model : nn::cnnModels()) {
        table.addRow({nn::modelName(model),
                      fmtPct(100 * utilization(false, false, model)),
                      fmtPct(100 * utilization(true, false, model)),
                      fmtPct(100 * utilization(false, true, model)),
                      fmtPct(100 * utilization(true, true, model))});
    }
    table.print(std::cout);
    std::cout << "(paper: RC adds up to +66% on VGG-19, OP up to +18% "
                 "on AlexNet, RC+OP ~100%)\n";
    return 0;
}
