/**
 * @file
 * Paper Fig. 15: fixed-function PIM utilization with and without RC
 * and OP. Expectations: +RC improves utilization by up to 66%
 * (VGG-19); +OP adds up to 18% (AlexNet); with RC+OP utilization is
 * close to 100%.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

namespace {

double
utilization(bool rc, bool op, hpim::nn::ModelId model)
{
    auto config = hpim::baseline::makeHetero(true, rc, op);
    config.steps = 4;
    hpim::rt::HeteroRuntime runtime(config);
    return runtime.train(hpim::nn::buildModel(model))
        .execution.fixedUtilization;
}

/** RC/OP flag combos in table-column order. */
constexpr bool flagCombos[4][2] = {
    {false, false}, {true, false}, {false, true}, {true, true}};

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpim;
    using harness::fmtPct;

    harness::banner(std::cout,
                    "Fig. 15: fixed-PIM utilization w/ and w/o RC & OP");

    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    auto models = nn::cnnModels();
    auto utils =
        runner.map(models.size() * 4,
                   [&models](std::size_t i, sim::Rng &) {
                       const bool *flags = flagCombos[i % 4];
                       return utilization(flags[0], flags[1],
                                          models[i / 4]);
                   });

    harness::TablePrinter table({"model", "no RC/OP", "+RC", "+OP",
                                 "+RC+OP [~100%]"});
    for (std::size_t m = 0; m < models.size(); ++m) {
        table.addRow({nn::modelName(models[m]),
                      fmtPct(100 * utils[m * 4 + 0]),
                      fmtPct(100 * utils[m * 4 + 1]),
                      fmtPct(100 * utils[m * 4 + 2]),
                      fmtPct(100 * utils[m * 4 + 3])});
    }
    table.print(std::cout);
    std::cout << "(paper: RC adds up to +66% on VGG-19, OP up to +18% "
                 "on AlexNet, RC+OP ~100%)\n";
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
