/**
 * @file
 * Paper Fig. 2: the four operation classes, by compute intensity and
 * memory intensity quadrants:
 *   (1) compute-intensive & not memory-intensive -- may offload when
 *       PIMs idle;
 *   (2) compute- & memory-intensive -- the offload targets;
 *   (3) memory-intensive only -- unusual;
 *   (4) neither -- negligible impact.
 * Classifies every op type of the three profiled CNNs by whether its
 * share of step time / memory accesses exceeds its fair share.
 */

#include <iostream>

#include "cpu/cpu_model.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/profiler.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using harness::fmt;

    const std::vector<nn::ModelId> models = {
        nn::ModelId::Vgg19, nn::ModelId::AlexNet, nn::ModelId::Dcgan};

    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    auto profiles = runner.map(
        models.size(), [&models](std::size_t i, sim::Rng &) {
            cpu::CpuModel cpu;
            rt::Profiler profiler(cpu);
            return profiler.profile(nn::buildModel(models[i]));
        });

    for (std::size_t m = 0; m < models.size(); ++m) {
        nn::ModelId model = models[m];
        const rt::ProfileReport &report = profiles[m];

        harness::banner(std::cout, "Fig. 2 classes ("
                                       + nn::modelName(model) + ")");
        harness::TablePrinter table({"op type", "time %", "mem %",
                                     "class", "disposition"});

        double fair = 100.0 / double(report.byType.size());
        for (const rt::TypeProfile &t : report.topByTime()) {
            bool ci = t.timePct >= fair;
            bool mi = t.accessPct >= fair;
            int cls = ci ? (mi ? 2 : 1) : (mi ? 3 : 4);
            const char *disposition =
                cls == 2   ? "offload target"
                : cls == 1 ? "offload when PIMs idle"
                : cls == 3 ? "unusual"
                           : "negligible";
            table.addRow({nn::opName(t.type), fmt(t.timePct, 2),
                          fmt(t.accessPct, 2), std::to_string(cls),
                          disposition});
        }
        table.print(std::cout);
    }
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
