/**
 * @file
 * Paper Fig. 2: the four operation classes, by compute intensity and
 * memory intensity quadrants:
 *   (1) compute-intensive & not memory-intensive -- may offload when
 *       PIMs idle;
 *   (2) compute- & memory-intensive -- the offload targets;
 *   (3) memory-intensive only -- unusual;
 *   (4) neither -- negligible impact.
 * Classifies every op type of the three profiled CNNs by whether its
 * share of step time / memory accesses exceeds its fair share.
 */

#include <iostream>

#include "cpu/cpu_model.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/profiler.hh"

int
main()
{
    using namespace hpim;
    using harness::fmt;

    cpu::CpuModel cpu;
    rt::Profiler profiler(cpu);

    const std::vector<nn::ModelId> models = {
        nn::ModelId::Vgg19, nn::ModelId::AlexNet, nn::ModelId::Dcgan};

    for (nn::ModelId model : models) {
        nn::Graph graph = nn::buildModel(model);
        rt::ProfileReport report = profiler.profile(graph);

        harness::banner(std::cout, "Fig. 2 classes ("
                                       + nn::modelName(model) + ")");
        harness::TablePrinter table({"op type", "time %", "mem %",
                                     "class", "disposition"});

        double fair = 100.0 / double(report.byType.size());
        for (const rt::TypeProfile &t : report.topByTime()) {
            bool ci = t.timePct >= fair;
            bool mi = t.accessPct >= fair;
            int cls = ci ? (mi ? 2 : 1) : (mi ? 3 : 4);
            const char *disposition =
                cls == 2   ? "offload target"
                : cls == 1 ? "offload when PIMs idle"
                : cls == 3 ? "unusual"
                           : "negligible";
            table.addRow({nn::opName(t.type), fmt(t.timePct, 2),
                          fmt(t.accessPct, 2), std::to_string(cls),
                          disposition});
        }
        table.print(std::cout);
    }
    return 0;
}
