/**
 * @file
 * Paper Fig. 10: performance and energy versus Neurocube (a prior
 * programmable-PE PIM design). Expectation: Hetero PIM is at least 3x
 * better in both metrics on every model, with larger gaps on highly
 * compute-intensive models (VGG-19, Inception-v3).
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;
    using harness::fmtRatio;

    harness::banner(std::cout,
                    "Fig. 10: Neurocube vs Hetero PIM "
                    "(ratios normalized to Hetero PIM; paper: >=3x)");

    harness::TablePrinter table(
        {"model", "Neurocube step (ms)", "Hetero step (ms)",
         "perf ratio [>=3x]", "energy ratio [>=3x]"});

    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    std::vector<harness::ExperimentPoint> points;
    for (nn::ModelId model : nn::cnnModels()) {
        points.push_back(
            {.kind = SystemKind::Neurocube, .model = model});
        points.push_back(
            {.kind = SystemKind::HeteroPim, .model = model});
    }
    auto reports = runner.run(points);

    auto models = nn::cnnModels();
    for (std::size_t m = 0; m < models.size(); ++m) {
        nn::ModelId model = models[m];
        const auto &neuro = reports[2 * m];
        const auto &hetero = reports[2 * m + 1];
        table.addRow({nn::modelName(model),
                      fmt(neuro.stepSec * 1e3, 1),
                      fmt(hetero.stepSec * 1e3, 1),
                      fmtRatio(neuro.stepSec / hetero.stepSec),
                      fmtRatio(neuro.energyPerStepJ
                               / hetero.energyPerStepJ)});
    }
    table.print(std::cout);
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
