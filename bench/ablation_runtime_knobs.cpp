/**
 * @file
 * Ablations of the runtime's design choices (beyond the paper's own
 * figures, but directly probing its parameters):
 *   1. the offload-coverage target x of the candidate selector
 *      (the paper fixes x = 90);
 *   2. the host-driven feed depth for complex ops without RC
 *      (why RC matters);
 *   3. the in-bank operand reuse of the fixed-function units
 *      (why frequency scaling saturates).
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

int
main()
{
    using namespace hpim;
    using harness::fmt;

    nn::Graph vgg = nn::buildVgg19();

    harness::banner(std::cout,
                    "Ablation 1: offload coverage target x "
                    "(paper: x = 90)");
    harness::TablePrinter coverage({"x (%)", "candidates",
                                    "VGG-19 step (ms)",
                                    "energy (J/step)"});
    for (double x : {30.0, 50.0, 70.0, 90.0, 99.0}) {
        auto config =
            baseline::makeConfig(baseline::SystemKind::HeteroPim);
        config.offloadCoveragePct = x;
        config.steps = 3;
        rt::HeteroRuntime runtime(config);
        auto result = runtime.train(vgg);
        coverage.addRow(
            {fmt(x, 0),
             std::to_string(result.selection.candidates.size()),
             fmt(result.execution.stepSec * 1e3, 1),
             fmt(result.execution.energyPerStepJ, 1)});
    }
    coverage.print(std::cout);

    harness::banner(std::cout,
                    "Ablation 2: host-driven feed depth without RC "
                    "(units a complex op can hold)");
    harness::TablePrinter feed({"max units", "VGG-19 step (ms)",
                                "fixed util"});
    for (std::uint32_t units : {16u, 48u, 96u, 192u, 444u}) {
        auto config = baseline::makeHetero(true, false, true);
        config.hostDrivenMaxUnits = units;
        config.steps = 3;
        rt::HeteroRuntime runtime(config);
        auto rep = runtime.train(vgg).execution;
        feed.addRow({std::to_string(units), fmt(rep.stepSec * 1e3, 1),
                     harness::fmtPct(rep.fixedUtilization * 100.0)});
    }
    feed.print(std::cout);

    harness::banner(std::cout,
                    "Ablation 3: in-bank operand reuse "
                    "(flops per DRAM byte) at 4x frequency");
    harness::TablePrinter reuse({"reuse (flop/B)", "VGG-19 step (ms)",
                                 "speedup vs 1x-frequency"});
    auto base_config =
        baseline::makeConfig(baseline::SystemKind::HeteroPim);
    base_config.steps = 3;
    double base =
        rt::HeteroRuntime(base_config).train(vgg).execution.stepSec;
    for (double r : {10.0, 25.0, 45.0, 90.0}) {
        auto config =
            baseline::makeConfig(baseline::SystemKind::HeteroPim, 4.0);
        config.fixedOperandReuse = r;
        config.steps = 3;
        rt::HeteroRuntime runtime(config);
        auto rep = runtime.train(vgg).execution;
        reuse.addRow({fmt(r, 0), fmt(rep.stepSec * 1e3, 1),
                      harness::fmtRatio(base / rep.stepSec)});
    }
    reuse.print(std::cout);
    return 0;
}
