/**
 * @file
 * Ablations of the runtime's design choices (beyond the paper's own
 * figures, but directly probing its parameters):
 *   1. the offload-coverage target x of the candidate selector
 *      (the paper fixes x = 90);
 *   2. the host-driven feed depth for complex ops without RC
 *      (why RC matters);
 *   3. the in-bank operand reuse of the fixed-function units
 *      (why frequency scaling saturates).
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using harness::fmt;

    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));

    harness::banner(std::cout,
                    "Ablation 1: offload coverage target x "
                    "(paper: x = 90)");
    const std::vector<double> coverages = {30.0, 50.0, 70.0, 90.0,
                                           99.0};
    auto coverage_results = runner.map(
        coverages.size(), [&coverages](std::size_t i, sim::Rng &) {
            auto config =
                baseline::makeConfig(baseline::SystemKind::HeteroPim);
            config.offloadCoveragePct = coverages[i];
            config.steps = 3;
            rt::HeteroRuntime runtime(config);
            return runtime.train(nn::buildVgg19());
        });
    harness::TablePrinter coverage({"x (%)", "candidates",
                                    "VGG-19 step (ms)",
                                    "energy (J/step)"});
    for (std::size_t i = 0; i < coverages.size(); ++i) {
        const auto &result = coverage_results[i];
        coverage.addRow(
            {fmt(coverages[i], 0),
             std::to_string(result.selection.candidates.size()),
             fmt(result.execution.stepSec * 1e3, 1),
             fmt(result.execution.energyPerStepJ, 1)});
    }
    coverage.print(std::cout);

    harness::banner(std::cout,
                    "Ablation 2: host-driven feed depth without RC "
                    "(units a complex op can hold)");
    const std::vector<std::uint32_t> depths = {16, 48, 96, 192, 444};
    auto feed_results = runner.map(
        depths.size(), [&depths](std::size_t i, sim::Rng &) {
            auto config = baseline::makeHetero(true, false, true);
            config.hostDrivenMaxUnits = depths[i];
            config.steps = 3;
            rt::HeteroRuntime runtime(config);
            return runtime.train(nn::buildVgg19()).execution;
        });
    harness::TablePrinter feed({"max units", "VGG-19 step (ms)",
                                "fixed util"});
    for (std::size_t i = 0; i < depths.size(); ++i) {
        const auto &rep = feed_results[i];
        feed.addRow({std::to_string(depths[i]),
                     fmt(rep.stepSec * 1e3, 1),
                     harness::fmtPct(rep.fixedUtilization * 100.0)});
    }
    feed.print(std::cout);

    harness::banner(std::cout,
                    "Ablation 3: in-bank operand reuse "
                    "(flops per DRAM byte) at 4x frequency");
    // Point 0 is the 1x-frequency reference the speedups divide by.
    const std::vector<double> reuses = {10.0, 25.0, 45.0, 90.0};
    auto reuse_results = runner.map(
        reuses.size() + 1, [&reuses](std::size_t i, sim::Rng &) {
            auto config = baseline::makeConfig(
                baseline::SystemKind::HeteroPim, i == 0 ? 1.0 : 4.0);
            if (i > 0)
                config.fixedOperandReuse = reuses[i - 1];
            config.steps = 3;
            rt::HeteroRuntime runtime(config);
            return runtime.train(nn::buildVgg19()).execution.stepSec;
        });
    double base = reuse_results[0];
    harness::TablePrinter reuse({"reuse (flop/B)", "VGG-19 step (ms)",
                                 "speedup vs 1x-frequency"});
    for (std::size_t i = 0; i < reuses.size(); ++i) {
        double step = reuse_results[i + 1];
        reuse.addRow({fmt(reuses[i], 0), fmt(step * 1e3, 1),
                      harness::fmtRatio(base / step)});
    }
    reuse.print(std::cout);
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
