/**
 * @file
 * Paper Fig. 12: scaling the number of programmable PIMs (1P/4P/16P)
 * at constant logic-die area -- extra ARM processors displace
 * fixed-function units. Expectation: the three configurations differ
 * by only 12-14% (one programmable PIM suffices; more cores cost
 * fixed-function parallelism).
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;

    harness::banner(std::cout,
                    "Fig. 12: programmable-PIM scaling (1P/4P/16P) at "
                    "constant die area");

    harness::TablePrinter table({"model", "config", "fixed units",
                                 "step (ms)", "vs 1P"});

    const std::vector<std::uint32_t> pim_counts = {1, 4, 16};
    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    std::vector<harness::ExperimentPoint> points;
    for (nn::ModelId model : nn::cnnModels()) {
        for (std::uint32_t pims : pim_counts) {
            points.push_back({.kind = SystemKind::HeteroPim,
                              .model = model,
                              .progrPims = pims});
        }
    }
    auto reports = runner.run(points);

    auto models = nn::cnnModels();
    for (std::size_t m = 0; m < models.size(); ++m) {
        nn::ModelId model = models[m];
        double base = 0.0;
        for (std::size_t p = 0; p < pim_counts.size(); ++p) {
            std::uint32_t pims = pim_counts[p];
            auto config =
                baseline::makeConfig(SystemKind::HeteroPim, 1.0, pims);
            const auto &rep = reports[m * pim_counts.size() + p];
            if (pims == 1)
                base = rep.stepSec;
            table.addRow(
                {nn::modelName(model), std::to_string(pims) + "P",
                 std::to_string(config.fixed.totalUnits),
                 fmt(rep.stepSec * 1e3, 1),
                 harness::fmtPct(100.0 * (rep.stepSec - base) / base,
                                 1)});
        }
    }
    table.print(std::cout);
    std::cout << "(paper: 16P vs 1P differs by 12%-14%)\n";
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
