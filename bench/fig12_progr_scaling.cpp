/**
 * @file
 * Paper Fig. 12: scaling the number of programmable PIMs (1P/4P/16P)
 * at constant logic-die area -- extra ARM processors displace
 * fixed-function units. Expectation: the three configurations differ
 * by only 12-14% (one programmable PIM suffices; more cores cost
 * fixed-function parallelism).
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main()
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;

    harness::banner(std::cout,
                    "Fig. 12: programmable-PIM scaling (1P/4P/16P) at "
                    "constant die area");

    harness::TablePrinter table({"model", "config", "fixed units",
                                 "step (ms)", "vs 1P"});

    for (nn::ModelId model : nn::cnnModels()) {
        double base = 0.0;
        for (std::uint32_t pims : {1u, 4u, 16u}) {
            auto config =
                baseline::makeConfig(SystemKind::HeteroPim, 1.0, pims);
            auto rep = baseline::runSystem(SystemKind::HeteroPim, model,
                                           4, 1.0, pims);
            if (pims == 1)
                base = rep.stepSec;
            table.addRow(
                {nn::modelName(model), std::to_string(pims) + "P",
                 std::to_string(config.fixed.totalUnits),
                 fmt(rep.stepSec * 1e3, 1),
                 harness::fmtPct(100.0 * (rep.stepSec - base) / base,
                                 1)});
        }
    }
    table.print(std::cout);
    std::cout << "(paper: 16P vs 1P differs by 12%-14%)\n";
    return 0;
}
