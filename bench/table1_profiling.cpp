/**
 * @file
 * Paper Table I: per-operation profiling of VGG-19, AlexNet and DCGAN
 * training steps -- top-5 compute-intensive ops by execution time and
 * top-5 memory-intensive ops by main-memory accesses, with invocation
 * counts, plus the "other ops" residual row.
 */

#include <iostream>

#include "cpu/cpu_model.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/profiler.hh"

int
main()
{
    using namespace hpim;
    using harness::fmt;

    cpu::CpuModel cpu;
    rt::Profiler profiler(cpu);

    const std::vector<nn::ModelId> models = {
        nn::ModelId::Vgg19, nn::ModelId::AlexNet, nn::ModelId::Dcgan};

    for (nn::ModelId model : models) {
        nn::Graph graph = nn::buildModel(model);
        rt::ProfileReport report = profiler.profile(graph);

        harness::banner(std::cout,
                        "Table I (" + nn::modelName(model)
                            + "): top-5 CI ops / top-5 MI ops");

        auto emit = [&](const std::vector<rt::TypeProfile> &sorted,
                        bool by_time) {
            harness::TablePrinter table(
                {by_time ? "Top CI op" : "Top MI op",
                 by_time ? "Execution Time(%)"
                         : "#Main Memory Access(%)",
                 "#Invocation"});
            double residual_pct = 0.0;
            std::uint64_t residual_inv = 0;
            for (std::size_t i = 0; i < sorted.size(); ++i) {
                double pct = by_time ? sorted[i].timePct
                                     : sorted[i].accessPct;
                if (i < 5) {
                    table.addRow({std::to_string(i + 1) + ". "
                                      + nn::opName(sorted[i].type),
                                  fmt(pct, 2),
                                  std::to_string(
                                      sorted[i].invocations)});
                } else {
                    residual_pct += pct;
                    residual_inv += sorted[i].invocations;
                }
            }
            if (sorted.size() > 5) {
                table.addRow({"Other "
                                  + std::to_string(sorted.size() - 5)
                                  + " op types",
                              fmt(residual_pct, 2),
                              std::to_string(residual_inv)});
            }
            table.print(std::cout);
        };

        emit(report.topByTime(), true);
        emit(report.topByAccesses(), false);

        std::cout << "total ops: " << graph.size()
                  << ", step time on CPU: "
                  << fmt(report.totalTimeSec * 1e3, 1) << " ms, "
                  << "main-memory accesses: "
                  << fmt(report.totalAccesses / 1e6, 1) << "M\n";
    }
    return 0;
}
