/**
 * @file
 * Load generator for the hpim_serve daemon (docs/SERVING.md).
 *
 * Three phases against one daemon:
 *
 *  1. *Closed loop*: --clients threads each issue --requests
 *     back-to-back simulate requests (two alternating configs, so
 *     after the first misses the shared memo cache answers most of
 *     them) and record per-request latency.
 *  2. *Open-loop burst*: one connection pipelines --burst simulate
 *     requests without waiting for responses -- deliberately past the
 *     admission limit -- then collects every response. This is the
 *     overload probe: the daemon must answer each request with
 *     either a report or a typed `overloaded` rejection, never hang.
 *  3. *Deadline probe*: --deadline-probes requests carrying a
 *     microscopic deadline_ms; every one must come back as
 *     `deadline_exceeded`.
 *
 * Every response is accounted for: sent == answered is asserted, so
 * a hung request fails the bench (CI serve-smoke runs it). Results
 * (latency percentiles, outcome counts, memo hit rate, drain time)
 * go to --out as BENCH_serve.json.
 *
 * By default the bench starts an in-process Server on a scratch
 * socket; --socket PATH targets an externally started daemon
 * instead (then drain_ms is reported as 0).
 *
 * usage: serve_load [--out FILE] [--socket PATH] [--clients N]
 *                   [--requests N] [--burst N] [--deadline-probes N]
 *                   [--admission-limit N] [--workers N]
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "harness/json.hh"
#include "harness/json_writer.hh"
#include "harness/table_printer.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/logging.hh"

namespace {

using namespace hpim;
using Clock = std::chrono::steady_clock;

struct Outcomes
{
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> overloaded{0};
    std::atomic<std::uint64_t> deadline{0};
    std::atomic<std::uint64_t> shuttingDown{0};
    std::atomic<std::uint64_t> error{0};

    void
    record(const serve::Response &response)
    {
        if (response.ok) {
            ok.fetch_add(1);
            return;
        }
        switch (response.code) {
          case serve::ErrorCode::Overloaded:
            overloaded.fetch_add(1);
            break;
          case serve::ErrorCode::DeadlineExceeded:
            deadline.fetch_add(1);
            break;
          case serve::ErrorCode::ShuttingDown:
            shuttingDown.fetch_add(1);
            break;
          default:
            error.fetch_add(1);
            break;
        }
    }

    std::uint64_t
    total() const
    {
        return ok.load() + overloaded.load() + deadline.load()
               + shuttingDown.load() + error.load();
    }
};

double
percentile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/** Pipeline @p count requests on one raw connection, then read every
 *  response. Returns false if any response never arrived. */
bool
runBurst(const std::string &socket_path, std::size_t count,
         Outcomes &outcomes)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    fatal_if(socket_path.size() >= sizeof(addr.sun_path),
             "socket path too long");
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    fatal_if(fd < 0, "socket: ", std::strerror(errno));
    fatal_if(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr))
                 != 0,
             "connect '", socket_path, "': ", std::strerror(errno));
    timeval tv{60, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::string wire;
    for (std::size_t i = 0; i < count; ++i) {
        serve::Request request;
        request.id = 1000 + i;
        request.kind = serve::RequestKind::Simulate;
        request.sim.model = "alexnet";
        request.sim.system = "hetero";
        request.sim.steps = 1;
        serve::appendFrame(wire, serve::encodeRequest(request));
    }
    std::size_t off = 0;
    while (off < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + off, wire.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }

    std::string rbuf;
    std::size_t answered = 0;
    char chunk[65536];
    while (answered < count) {
        serve::FrameSplit split =
            serve::splitFrame(rbuf, serve::defaultMaxFrameBytes);
        if (split.status == serve::FrameSplit::Status::Frame) {
            outcomes.record(
                serve::parseResponse(std::string(split.payload)));
            rbuf.erase(0, split.frameEnd);
            ++answered;
            continue;
        }
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0)
            break; // timeout, EOF: some response never came
        rbuf.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return answered == count;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_serve.json";
    std::string socket_path;
    std::size_t clients = 4;
    std::size_t requests = 25;
    std::size_t burst = 64;
    std::size_t deadline_probes = 8;
    std::size_t admission_limit = 8;
    std::uint32_t workers = 4;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--out") out = next();
        else if (arg == "--socket") socket_path = next();
        else if (arg == "--clients") clients = std::stoul(next());
        else if (arg == "--requests") requests = std::stoul(next());
        else if (arg == "--burst") burst = std::stoul(next());
        else if (arg == "--deadline-probes")
            deadline_probes = std::stoul(next());
        else if (arg == "--admission-limit")
            admission_limit = std::stoul(next());
        else if (arg == "--workers")
            workers = static_cast<std::uint32_t>(std::stoul(next()));
        else
            fatal("unknown argument '", arg,
                  "'\nusage: serve_load [--out FILE] [--socket PATH] "
                  "[--clients N] [--requests N] [--burst N] "
                  "[--deadline-probes N] [--admission-limit N] "
                  "[--workers N]");
    }

    // In-process daemon unless --socket names an external one.
    std::unique_ptr<serve::Server> server;
    std::thread server_thread;
    if (socket_path.empty()) {
        socket_path = "/tmp/hpim_serve_load."
                      + std::to_string(::getpid()) + ".sock";
        serve::ServerOptions options;
        options.socketPath = socket_path;
        options.workers = workers;
        options.admissionLimit = admission_limit;
        server = std::make_unique<serve::Server>(options);
        server_thread = std::thread([&server] { server->run(); });
    }

    Outcomes outcomes;
    std::uint64_t sent = 0;

    // Phase 1: closed loop.
    std::vector<std::vector<double>> latencies(clients);
    {
        std::vector<std::thread> threads;
        for (std::size_t c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                serve::ClientOptions options;
                options.socketPath = socket_path;
                options.ioTimeoutMs = 60'000.0;
                serve::Client client(options);
                for (std::size_t r = 0; r < requests; ++r) {
                    serve::Request request;
                    request.id = c * requests + r + 1;
                    request.kind = serve::RequestKind::Simulate;
                    request.sim.model = "alexnet";
                    request.sim.system = "hetero";
                    // Two alternating configs: the first visits miss
                    // the memo cache, the rest hit it.
                    request.sim.steps = 1 + (r % 2);
                    const Clock::time_point start = Clock::now();
                    outcomes.record(client.call(request));
                    latencies[c].push_back(
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count());
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
        sent += clients * requests;
    }

    // Phase 2: open-loop overload burst.
    bool burst_answered = true;
    if (burst > 0) {
        burst_answered = runBurst(socket_path, burst, outcomes);
        sent += burst;
    }

    // Phase 3: deadline probes.
    {
        serve::ClientOptions options;
        options.socketPath = socket_path;
        options.ioTimeoutMs = 60'000.0;
        serve::Client client(options);
        for (std::size_t i = 0; i < deadline_probes; ++i) {
            serve::Request request;
            request.id = 500'000 + i;
            request.kind = serve::RequestKind::Simulate;
            request.deadlineMs = 0.001;
            request.sim.model = "vgg19";
            request.sim.system = "hetero";
            request.sim.steps = 64;
            outcomes.record(client.call(request));
            ++sent;
        }
    }

    // Final stats snapshot (memo hit rate comes from the daemon).
    std::uint64_t memo_hits = 0, memo_misses = 0;
    {
        serve::ClientOptions options;
        options.socketPath = socket_path;
        options.ioTimeoutMs = 60'000.0;
        serve::Client client(options);
        serve::Request request;
        request.id = 999'999;
        request.kind = serve::RequestKind::Stats;
        serve::Response response = client.call(request);
        fatal_if(!response.ok || response.statsJson.empty(),
                 "stats request failed");
        harness::json::Value stats =
            harness::json::parse(response.statsJson);
        memo_hits = stats.at("memo").at("hits").asUInt64();
        memo_misses = stats.at("memo").at("misses").asUInt64();
    }

    double drain_ms = 0.0;
    if (server != nullptr) {
        server->requestStop();
        server_thread.join();
        drain_ms = server->drainMs();
    }

    // Accounting: every request must have been answered.
    const std::uint64_t answered = outcomes.total();
    fatal_if(!burst_answered || answered != sent,
             "hang detected: sent ", sent, " requests but only ",
             answered, " were answered");

    std::vector<double> all;
    for (const std::vector<double> &per_client : latencies)
        all.insert(all.end(), per_client.begin(), per_client.end());
    std::sort(all.begin(), all.end());
    double mean = 0.0;
    for (double ms : all)
        mean += ms;
    if (!all.empty())
        mean /= static_cast<double>(all.size());
    const double p50 = percentile(all, 0.50);
    const double p90 = percentile(all, 0.90);
    const double p99 = percentile(all, 0.99);
    const double worst = all.empty() ? 0.0 : all.back();
    const std::uint64_t lookups = memo_hits + memo_misses;
    const double hit_rate =
        lookups > 0
            ? static_cast<double>(memo_hits)
                  / static_cast<double>(lookups)
            : 0.0;

    harness::TablePrinter table({"metric", "value"});
    table.addRow({"requests sent", std::to_string(sent)});
    table.addRow({"ok", std::to_string(outcomes.ok.load())});
    table.addRow(
        {"overloaded", std::to_string(outcomes.overloaded.load())});
    table.addRow({"deadline_exceeded",
                  std::to_string(outcomes.deadline.load())});
    table.addRow({"p50 (ms)", harness::fmt(p50, 2)});
    table.addRow({"p90 (ms)", harness::fmt(p90, 2)});
    table.addRow({"p99 (ms)", harness::fmt(p99, 2)});
    table.addRow({"max (ms)", harness::fmt(worst, 2)});
    table.addRow({"memo hit rate", harness::fmtPct(hit_rate * 100.0)});
    table.addRow({"drain (ms)", harness::fmt(drain_ms, 2)});
    table.print(std::cout);

    {
        std::ofstream file(out, std::ios::trunc);
        fatal_if(!file, "cannot write ", out);
        harness::json::Writer writer(file);
        writer.beginObject();
        writer.field("schema", std::int64_t(1));
        writer.field("bench", "serve");
        writer.field("clients", std::int64_t(clients));
        writer.field("requests_per_client", std::int64_t(requests));
        writer.field("burst", std::int64_t(burst));
        writer.field("deadline_probes",
                     std::int64_t(deadline_probes));
        writer.field("admission_limit",
                     std::int64_t(admission_limit));
        writer.field("requests_sent", std::int64_t(sent));
        writer.key("latency_ms").beginObject();
        writer.field("p50", p50);
        writer.field("p90", p90);
        writer.field("p99", p99);
        writer.field("max", worst);
        writer.field("mean", mean);
        writer.endObject();
        writer.key("outcomes").beginObject();
        writer.field("ok", std::int64_t(outcomes.ok.load()));
        writer.field("overloaded",
                     std::int64_t(outcomes.overloaded.load()));
        writer.field("deadline_exceeded",
                     std::int64_t(outcomes.deadline.load()));
        writer.field("shutting_down",
                     std::int64_t(outcomes.shuttingDown.load()));
        writer.field("error", std::int64_t(outcomes.error.load()));
        writer.endObject();
        writer.key("memo").beginObject();
        writer.field("hits", std::int64_t(memo_hits));
        writer.field("misses", std::int64_t(memo_misses));
        writer.field("hit_rate", hit_rate);
        writer.endObject();
        writer.field("drain_ms", drain_ms);
        writer.endObject();
        file << "\n";
    }
    std::cout << "[serve_load] wrote " << out << "\n";
    return outcomes.error.load() == 0 ? 0 : 1;
}
