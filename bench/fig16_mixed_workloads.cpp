/**
 * @file
 * Paper Fig. 16: mixed-workload analysis. A CNN model co-runs with a
 * non-CNN model (LSTM or Word2vec); the CNN uses the full runtime
 * while the guest executes on the CPU / programmable PIM when idle.
 * Expectation: 69%-83% improvement over sequential execution.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

int
main()
{
    using namespace hpim;
    using harness::fmt;
    using harness::fmtPct;

    harness::banner(std::cout,
                    "Fig. 16: co-run vs sequential execution "
                    "(paper: 69%-83% improvement)");

    const std::vector<std::pair<nn::ModelId, nn::ModelId>> pairs = {
        {nn::ModelId::Vgg19, nn::ModelId::Lstm},
        {nn::ModelId::Vgg19, nn::ModelId::Word2vec},
        {nn::ModelId::AlexNet, nn::ModelId::Lstm},
        {nn::ModelId::AlexNet, nn::ModelId::Word2vec},
        {nn::ModelId::ResNet50, nn::ModelId::Lstm},
        {nn::ModelId::InceptionV3, nn::ModelId::Word2vec},
    };

    auto config = baseline::makeConfig(baseline::SystemKind::HeteroPim);
    config.steps = 4;
    rt::HeteroRuntime runtime(config);

    harness::TablePrinter table({"co-run pair", "sequential (ms)",
                                 "co-run (ms)", "improvement"});
    for (auto [cnn, guest] : pairs) {
        nn::Graph primary = nn::buildModel(cnn);
        nn::Graph secondary = nn::buildModel(guest);
        auto seq = runtime.corunSequential(primary, secondary);
        auto co = runtime.corun(primary, secondary);
        double improvement = (seq.execution.makespanSec
                              - co.execution.makespanSec)
                             / co.execution.makespanSec;
        table.addRow({nn::modelName(cnn) + " + " + nn::modelName(guest),
                      fmt(seq.execution.makespanSec * 1e3, 1),
                      fmt(co.execution.makespanSec * 1e3, 1),
                      fmtPct(100.0 * improvement)});
    }
    table.print(std::cout);
    return 0;
}
