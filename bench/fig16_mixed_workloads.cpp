/**
 * @file
 * Paper Fig. 16: mixed-workload analysis. A CNN model co-runs with a
 * non-CNN model (LSTM or Word2vec); the CNN uses the full runtime
 * while the guest executes on the CPU / programmable PIM when idle.
 * Expectation: 69%-83% improvement over sequential execution.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using harness::fmt;
    using harness::fmtPct;

    harness::banner(std::cout,
                    "Fig. 16: co-run vs sequential execution "
                    "(paper: 69%-83% improvement)");

    const std::vector<std::pair<nn::ModelId, nn::ModelId>> pairs = {
        {nn::ModelId::Vgg19, nn::ModelId::Lstm},
        {nn::ModelId::Vgg19, nn::ModelId::Word2vec},
        {nn::ModelId::AlexNet, nn::ModelId::Lstm},
        {nn::ModelId::AlexNet, nn::ModelId::Word2vec},
        {nn::ModelId::ResNet50, nn::ModelId::Lstm},
        {nn::ModelId::InceptionV3, nn::ModelId::Word2vec},
    };

    struct CorunResult
    {
        double sequentialSec;
        double corunSec;
    };

    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    auto results = runner.map(
        pairs.size(), [&pairs](std::size_t i, sim::Rng &) {
            auto config =
                baseline::makeConfig(baseline::SystemKind::HeteroPim);
            config.steps = 4;
            rt::HeteroRuntime runtime(config);
            nn::Graph primary = nn::buildModel(pairs[i].first);
            nn::Graph secondary = nn::buildModel(pairs[i].second);
            auto seq = runtime.corunSequential(primary, secondary);
            auto co = runtime.corun(primary, secondary);
            return CorunResult{seq.execution.makespanSec,
                               co.execution.makespanSec};
        });

    harness::TablePrinter table({"co-run pair", "sequential (ms)",
                                 "co-run (ms)", "improvement"});
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        auto [cnn, guest] = pairs[i];
        const CorunResult &r = results[i];
        double improvement =
            (r.sequentialSec - r.corunSec) / r.corunSec;
        table.addRow({nn::modelName(cnn) + " + " + nn::modelName(guest),
                      fmt(r.sequentialSec * 1e3, 1),
                      fmt(r.corunSec * 1e3, 1),
                      fmtPct(100.0 * improvement)});
    }
    table.print(std::cout);
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
