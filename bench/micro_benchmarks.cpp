/**
 * @file
 * google-benchmark micro-benchmarks of the simulator substrates:
 * event-queue throughput, DRAM bank/vault service, cache hierarchy
 * walks, placement solving, graph construction and a full scheduled
 * training step.
 */

#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "baseline/presets.hh"
#include "cache/hierarchy.hh"
#include "harness/sweep.hh"
#include "harness/thread_pool.hh"
#include "mem/hmc_stack.hh"
#include "model/thermal.hh"
#include "nn/models.hh"
#include "pim/placement.hh"
#include "rt/hetero_runtime.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace {

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        hpim::sim::EventQueue queue;
        for (int i = 0; i < 1000; ++i) {
            queue.scheduleCallback(static_cast<hpim::sim::Tick>(i) * 100,
                                   [] {});
        }
        queue.runAll();
        benchmark::DoNotOptimize(queue.processedCount());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void
BM_HmcStackDrain(benchmark::State &state)
{
    hpim::sim::Rng rng(7);
    for (auto _ : state) {
        hpim::mem::HmcStack stack{hpim::mem::HmcConfig{}};
        for (int i = 0; i < 2048; ++i) {
            hpim::mem::MemoryRequest req;
            req.id = static_cast<std::uint64_t>(i);
            req.addr = rng.next() % stack.capacity();
            req.type = (i & 3) ? hpim::mem::AccessType::Read
                               : hpim::mem::AccessType::Write;
            stack.enqueue(req);
        }
        auto done = stack.drainAll();
        benchmark::DoNotOptimize(done.size());
    }
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_HmcStackDrain);

void
BM_CacheHierarchy(benchmark::State &state)
{
    auto hierarchy = hpim::cache::CacheHierarchy::xeonLike();
    hpim::sim::Rng rng(13);
    for (auto _ : state) {
        for (int i = 0; i < 4096; ++i) {
            hierarchy.access(rng.next() % (1ULL << 30),
                             hpim::mem::AccessType::Read);
        }
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CacheHierarchy);

void
BM_Placement(benchmark::State &state)
{
    hpim::pim::BankGrid grid;
    for (auto _ : state) {
        auto placement = hpim::pim::placeUnits(grid, 444, 0.35);
        benchmark::DoNotOptimize(placement.totalUnits());
    }
}
BENCHMARK(BM_Placement);

void
BM_ThermalSolve(benchmark::State &state)
{
    hpim::pim::BankGrid grid;
    auto placement = hpim::pim::placeUnits(grid, 444, 0.35);
    for (auto _ : state) {
        auto result =
            hpim::model::solveThermal(grid, placement, 0.015);
        benchmark::DoNotOptimize(result.maxC);
    }
}
BENCHMARK(BM_ThermalSolve);

void
BM_BuildVgg19(benchmark::State &state)
{
    for (auto _ : state) {
        auto graph = hpim::nn::buildVgg19();
        benchmark::DoNotOptimize(graph.size());
    }
}
BENCHMARK(BM_BuildVgg19);

void
BM_ScheduledStep_AlexNet(benchmark::State &state)
{
    auto config =
        hpim::baseline::makeConfig(hpim::baseline::SystemKind::HeteroPim);
    config.steps = 2;
    hpim::rt::HeteroRuntime runtime(config);
    auto graph = hpim::nn::buildAlexNet();
    for (auto _ : state) {
        auto result = runtime.train(graph);
        benchmark::DoNotOptimize(result.execution.stepSec);
    }
}
BENCHMARK(BM_ScheduledStep_AlexNet);

void
BM_ThreadPool_Submit(benchmark::State &state)
{
    const auto jobs = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        hpim::harness::ThreadPool pool(jobs);
        std::vector<std::future<int>> futures;
        futures.reserve(1000);
        for (int i = 0; i < 1000; ++i)
            futures.push_back(pool.submit([i] { return i; }));
        long sum = 0;
        for (auto &future : futures)
            sum += future.get();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ThreadPool_Submit)->Arg(0)->Arg(1)->Arg(4);

void
BM_SweepRunner_AlexNetGrid(benchmark::State &state)
{
    using hpim::baseline::SystemKind;
    hpim::harness::SweepOptions options;
    options.jobs = static_cast<std::uint32_t>(state.range(0));
    std::vector<hpim::harness::ExperimentPoint> points;
    for (SystemKind kind :
         {SystemKind::CpuOnly, SystemKind::ProgrPimOnly,
          SystemKind::FixedPimOnly, SystemKind::HeteroPim}) {
        points.push_back({.kind = kind,
                          .model = hpim::nn::ModelId::AlexNet,
                          .steps = 2});
    }
    for (auto _ : state) {
        hpim::harness::SweepRunner runner(options);
        auto reports = runner.run(points);
        benchmark::DoNotOptimize(reports.size());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<long>(points.size()));
}
BENCHMARK(BM_SweepRunner_AlexNetGrid)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
