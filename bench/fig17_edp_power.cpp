/**
 * @file
 * Paper Fig. 17: (a) energy-delay product of Hetero PIM at 1x/2x/4x
 * PIM frequency -- expectation: 4x is the most energy-efficient point
 * for all five models; (b) full-system power of the GPU vs Hetero PIM
 * -- expectation: the GPU draws 1.5x-2.6x more power than Hetero at
 * 4x frequency.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main()
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;
    using harness::fmtRatio;

    harness::banner(std::cout,
                    "Fig. 17(a): EDP vs PIM frequency "
                    "(normalized to 1x; lower is better)");
    harness::TablePrinter edp({"model", "1x", "2x", "4x",
                               "best point [paper: 4x]"});
    for (nn::ModelId model : nn::cnnModels()) {
        double e1 = 0.0;
        std::vector<double> values;
        for (double scale : {1.0, 2.0, 4.0}) {
            auto rep = baseline::runSystem(SystemKind::HeteroPim, model,
                                           4, scale);
            if (scale == 1.0)
                e1 = rep.edp;
            values.push_back(rep.edp);
        }
        const char *labels[] = {"1x", "2x", "4x"};
        std::size_t best = 0;
        for (std::size_t i = 1; i < values.size(); ++i) {
            if (values[i] < values[best])
                best = i;
        }
        edp.addRow({nn::modelName(model), fmt(values[0] / e1, 3),
                    fmt(values[1] / e1, 3), fmt(values[2] / e1, 3),
                    labels[best]});
    }
    edp.print(std::cout);

    harness::banner(std::cout,
                    "Fig. 17(b): full-system power, GPU vs Hetero PIM "
                    "(paper: GPU 1.5x-2.6x of Hetero@4x)");
    harness::TablePrinter power(
        {"model", "GPU (W)", "Hetero 1x (W)", "Hetero 2x (W)",
         "Hetero 4x (W)", "GPU / Hetero@4x"});
    for (nn::ModelId model : nn::cnnModels()) {
        auto gpu = baseline::runSystem(SystemKind::Gpu, model);
        std::vector<double> watts;
        for (double scale : {1.0, 2.0, 4.0}) {
            watts.push_back(baseline::runSystem(SystemKind::HeteroPim,
                                                model, 4, scale)
                                .averagePowerW);
        }
        power.addRow({nn::modelName(model), fmt(gpu.averagePowerW, 1),
                      fmt(watts[0], 1), fmt(watts[1], 1),
                      fmt(watts[2], 1),
                      fmtRatio(gpu.averagePowerW / watts[2])});
    }
    power.print(std::cout);
    return 0;
}
