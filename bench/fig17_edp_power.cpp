/**
 * @file
 * Paper Fig. 17: (a) energy-delay product of Hetero PIM at 1x/2x/4x
 * PIM frequency -- expectation: 4x is the most energy-efficient point
 * for all five models; (b) full-system power of the GPU vs Hetero PIM
 * -- expectation: the GPU draws 1.5x-2.6x more power than Hetero at
 * 4x frequency.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;
    using harness::fmtRatio;

    // One grid serves both sub-figures: GPU + Hetero at 1x/2x/4x.
    const std::vector<double> scales = {1.0, 2.0, 4.0};
    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    std::vector<harness::ExperimentPoint> points;
    for (nn::ModelId model : nn::cnnModels()) {
        points.push_back({.kind = SystemKind::Gpu, .model = model});
        for (double scale : scales) {
            points.push_back({.kind = SystemKind::HeteroPim,
                              .model = model,
                              .freqScale = scale});
        }
    }
    auto reports = runner.run(points);
    auto models = nn::cnnModels();
    const std::size_t stride = 1 + scales.size();

    harness::banner(std::cout,
                    "Fig. 17(a): EDP vs PIM frequency "
                    "(normalized to 1x; lower is better)");
    harness::TablePrinter edp({"model", "1x", "2x", "4x",
                               "best point [paper: 4x]"});
    for (std::size_t m = 0; m < models.size(); ++m) {
        nn::ModelId model = models[m];
        std::vector<double> values;
        for (std::size_t s = 0; s < scales.size(); ++s)
            values.push_back(reports[m * stride + 1 + s].edp);
        double e1 = values[0];
        const char *labels[] = {"1x", "2x", "4x"};
        std::size_t best = 0;
        for (std::size_t i = 1; i < values.size(); ++i) {
            if (values[i] < values[best])
                best = i;
        }
        edp.addRow({nn::modelName(model), fmt(values[0] / e1, 3),
                    fmt(values[1] / e1, 3), fmt(values[2] / e1, 3),
                    labels[best]});
    }
    edp.print(std::cout);

    harness::banner(std::cout,
                    "Fig. 17(b): full-system power, GPU vs Hetero PIM "
                    "(paper: GPU 1.5x-2.6x of Hetero@4x)");
    harness::TablePrinter power(
        {"model", "GPU (W)", "Hetero 1x (W)", "Hetero 2x (W)",
         "Hetero 4x (W)", "GPU / Hetero@4x"});
    for (std::size_t m = 0; m < models.size(); ++m) {
        nn::ModelId model = models[m];
        const auto &gpu = reports[m * stride];
        std::vector<double> watts;
        for (std::size_t s = 0; s < scales.size(); ++s) {
            watts.push_back(
                reports[m * stride + 1 + s].averagePowerW);
        }
        power.addRow({nn::modelName(model), fmt(gpu.averagePowerW, 1),
                      fmt(watts[0], 1), fmt(watts[1], 1),
                      fmt(watts[2], 1),
                      fmtRatio(gpu.averagePowerW / watts[2])});
    }
    power.print(std::cout);
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
