/**
 * @file
 * Design-space exploration of the logic die (paper SectionIV-D):
 * derives the 444-unit fixed-function budget from area/power limits,
 * sweeps the ARM-core count (Fig. 12 variants), and validates the
 * thermally-aware edge/corner placement against a uniform one.
 */

#include <iostream>

#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "model/area_power.hh"
#include "model/thermal.hh"
#include "pim/fixed_pim.hh"
#include "pim/placement.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using harness::fmt;

    model::LogicDieBudget budget;
    model::UnitCosts costs;

    harness::banner(std::cout,
                    "Logic-die design space: fixed units vs ARM cores");
    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    const std::vector<std::uint32_t> core_counts = {1, 2, 4, 8, 16};
    auto design_points = runner.map(
        core_counts.size(),
        [&](std::size_t i, sim::Rng &) {
            return model::exploreDesign(budget, costs, core_counts[i]);
        });

    harness::TablePrinter dse({"ARM cores", "fixed units",
                               "area (mm^2)", "peak power (W)",
                               "feasible"});
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
        const auto &point = design_points[i];
        dse.addRow({std::to_string(core_counts[i]),
                    std::to_string(point.fixedUnits),
                    fmt(point.areaUsedMm2, 2),
                    fmt(point.peakPowerW, 2),
                    point.feasible() ? "yes" : "no"});
    }
    dse.print(std::cout);
    std::cout << "(paper: 444 fixed-function PIMs beside 1 ARM core)\n";

    harness::banner(std::cout,
                    "Thermally-aware placement (edge/corner biased)");
    pim::BankGrid grid;
    pim::FixedPimParams fixed;
    auto biased = pim::placeUnits(grid, fixed.totalUnits, 0.35);
    auto uniform = pim::placeUnits(grid, fixed.totalUnits, 0.0);

    // The two thermal solves are independent -- run them on the pool.
    auto thermals = runner.map(
        2, [&](std::size_t i, sim::Rng &) {
            return model::solveThermal(grid, i == 0 ? biased : uniform,
                                       fixed.unitPowerW());
        });
    const auto &biased_t = thermals[0];
    const auto &uniform_t = thermals[1];

    harness::TablePrinter thermal({"placement", "min units/bank",
                                   "max units/bank", "peak temp (C)",
                                   "under 85C limit"});
    thermal.addRow({"edge-biased (paper)",
                    std::to_string(biased.minPerBank()),
                    std::to_string(biased.maxPerBank()),
                    fmt(biased_t.maxC, 2),
                    biased_t.maxC < 85.0 ? "yes" : "no"});
    thermal.addRow({"uniform", std::to_string(uniform.minPerBank()),
                    std::to_string(uniform.maxPerBank()),
                    fmt(uniform_t.maxC, 2),
                    uniform_t.maxC < 85.0 ? "yes" : "no"});
    thermal.print(std::cout);

    std::cout << "\nPer-bank unit placement (8x4 grid, edge-biased):\n";
    for (std::uint32_t r = 0; r < grid.rows; ++r) {
        for (std::uint32_t c = 0; c < grid.cols; ++c) {
            std::cout << "  "
                      << biased.unitsPerBank[r * grid.cols + c];
        }
        std::cout << '\n';
    }
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
