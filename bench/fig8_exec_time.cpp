/**
 * @file
 * Paper Fig. 8: execution-time breakdown of five NN training models on
 * the five system configurations (CPU, GPU, Progr PIM, Fixed PIM,
 * Hetero PIM). Prints per-step time split into operation time, data
 * movement time, and synchronization time, plus the speedup ratios the
 * paper quotes in SectionVI-A.
 */

#include <iostream>
#include <map>

#include "baseline/presets.hh"
#include "harness/graph_workloads.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;
    using harness::fmtRatio;

    harness::banner(std::cout,
                    "Fig. 8: execution time breakdown (per step)");

    const std::vector<SystemKind> systems = {
        SystemKind::CpuOnly, SystemKind::Gpu, SystemKind::ProgrPimOnly,
        SystemKind::FixedPimOnly, SystemKind::HeteroPim};

    harness::SweepOptions options = harness::parseSweepArgs(argc, argv);
    auto user_graphs = harness::loadGraphWorkloads(options.graphFiles);
    harness::SweepRunner runner(std::move(options));
    std::vector<harness::ExperimentPoint> points;
    for (nn::ModelId model : nn::cnnModels()) {
        for (SystemKind kind : systems)
            points.push_back({.kind = kind, .model = model});
    }
    auto reports = runner.run(points);

    std::map<nn::ModelId, std::map<SystemKind, rt::ExecutionReport>>
        results;

    harness::TablePrinter table(
        {"model", "config", "step (ms)", "op (ms)", "data mv (ms)",
         "sync (ms)", "cpu busy", "progr busy", "fixed util"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        nn::ModelId model = points[i].model;
        SystemKind kind = points[i].kind;
        {
            const auto &report = reports[i];
            results[model][kind] = report;
            table.addRow(
                {nn::modelName(model), baseline::systemName(kind),
                 fmt(report.stepSec * 1e3, 1),
                 fmt(report.opSec * 1e3, 1),
                 fmt(report.dataMovementSec * 1e3, 1),
                 fmt(report.syncSec * 1e3, 1),
                 fmt(report.cpuBusySec * 1e3, 1),
                 fmt(report.progrBusySec * 1e3, 1),
                 harness::fmtPct(report.fixedUtilization * 100.0)});
        }
    }
    table.print(std::cout);

    harness::banner(std::cout,
                    "SectionVI-A headline ratios (paper expectations "
                    "in brackets)");
    harness::TablePrinter ratios(
        {"model", "CPU/Hetero [19%-28x]", "Progr/Hetero [2.5-23x]",
         "Fixed/Hetero [1.4-5.7x]", "GPU/Hetero [~1x; DCGAN<1]"});
    for (nn::ModelId model : nn::cnnModels()) {
        auto &r = results[model];
        double hetero = r[SystemKind::HeteroPim].stepSec;
        ratios.addRow(
            {nn::modelName(model),
             fmtRatio(r[SystemKind::CpuOnly].stepSec / hetero),
             fmtRatio(r[SystemKind::ProgrPimOnly].stepSec / hetero),
             fmtRatio(r[SystemKind::FixedPimOnly].stepSec / hetero),
             fmtRatio(r[SystemKind::Gpu].stepSec / hetero)});
    }
    ratios.print(std::cout);
    harness::runGraphAppendix(std::cout, runner, user_graphs,
                              {SystemKind::CpuOnly,
                               SystemKind::ProgrPimOnly,
                               SystemKind::FixedPimOnly,
                               SystemKind::HeteroPim});
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
