/**
 * @file
 * Paper Fig. 13: isolating the software (runtime) impact on execution
 * time. Compares Progr PIM, Fixed PIM, and Hetero PIM hardware without
 * RC/OP, then adds RC, OP, and RC+OP. Expectations: Hetero hardware
 * alone beats Progr/Fixed by up to 8.5x but only 7%-30% over Fixed;
 * RC+OP improves Hetero by up to 3.8x.
 *
 * Accepts every sweep-engine flag (parseSweepArgs): --jobs, --seed,
 * --journal, and --shard i/N for distributed runs whose shard
 * journals hpim_merge fuses back into the single-process table
 * (docs/SWEEP_ENGINE.md).
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/graph_workloads.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

namespace {

hpim::rt::ExecutionReport
runHetero(bool sched, bool rc, bool op, hpim::nn::ModelId model)
{
    auto config = hpim::baseline::makeHetero(sched, rc, op);
    config.steps = 4;
    hpim::rt::HeteroRuntime runtime(config);
    return runtime.train(hpim::nn::buildModel(model)).execution;
}

/** The six columns of Figs. 13/14, in table order. */
hpim::rt::ExecutionReport
runVariant(hpim::nn::ModelId model, std::size_t variant)
{
    using hpim::baseline::SystemKind;
    switch (variant) {
      case 0:
        return hpim::baseline::runSystem(SystemKind::ProgrPimOnly,
                                         model);
      case 1:
        return hpim::baseline::runSystem(SystemKind::FixedPimOnly,
                                         model);
      case 2: return runHetero(true, false, false, model);
      case 3: return runHetero(true, true, false, model);
      case 4: return runHetero(true, false, true, model);
      default: return runHetero(true, true, true, model);
    }
}

constexpr std::size_t numVariants = 6;

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;
    using harness::fmtRatio;

    harness::banner(std::cout,
                    "Fig. 13: execution time w/ and w/o RC and OP");

    harness::TablePrinter table(
        {"model", "Progr PIM", "Fixed PIM", "Hetero (no RC/OP)",
         "Hetero +RC", "Hetero +OP", "Hetero +RC+OP",
         "Fixed/no-RC-OP [1.07-1.3x]", "no-RC-OP/full [<=3.8x]"});

    harness::SweepOptions options = harness::parseSweepArgs(argc, argv);
    auto user_graphs = harness::loadGraphWorkloads(options.graphFiles);
    harness::SweepRunner runner(std::move(options));
    auto models = nn::cnnModels();
    std::uint64_t grid_hash = harness::hashString(
        "fig13 models x variants v1", 0xcbf29ce484222325ULL);
    for (auto model : models)
        grid_hash = harness::hashU64(
            static_cast<std::uint64_t>(model), grid_hash);
    grid_hash = harness::hashU64(numVariants, grid_hash);
    auto reports = runner.mapReports(
        models.size() * numVariants, grid_hash,
        [&models](std::size_t i, sim::Rng &) {
            return runVariant(models[i / numVariants],
                              i % numVariants);
        });

    for (std::size_t m = 0; m < models.size(); ++m) {
        nn::ModelId model = models[m];
        const auto *row = &reports[m * numVariants];
        const auto &progr = row[0];
        const auto &fixed = row[1];
        const auto &none = row[2];
        const auto &rc = row[3];
        const auto &op = row[4];
        const auto &both = row[5];
        table.addRow({nn::modelName(model),
                      fmt(progr.stepSec * 1e3, 1),
                      fmt(fixed.stepSec * 1e3, 1),
                      fmt(none.stepSec * 1e3, 1),
                      fmt(rc.stepSec * 1e3, 1),
                      fmt(op.stepSec * 1e3, 1),
                      fmt(both.stepSec * 1e3, 1),
                      fmtRatio(fixed.stepSec / none.stepSec),
                      fmtRatio(none.stepSec / both.stepSec)});
    }
    table.print(std::cout);
    harness::runGraphAppendix(std::cout, runner, user_graphs,
                              {SystemKind::ProgrPimOnly,
                               SystemKind::FixedPimOnly,
                               SystemKind::HeteroPim});
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
