/**
 * @file
 * Paper Fig. 13: isolating the software (runtime) impact on execution
 * time. Compares Progr PIM, Fixed PIM, and Hetero PIM hardware without
 * RC/OP, then adds RC, OP, and RC+OP. Expectations: Hetero hardware
 * alone beats Progr/Fixed by up to 8.5x but only 7%-30% over Fixed;
 * RC+OP improves Hetero by up to 3.8x.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

namespace {

hpim::rt::ExecutionReport
runHetero(bool sched, bool rc, bool op, hpim::nn::ModelId model)
{
    auto config = hpim::baseline::makeHetero(sched, rc, op);
    config.steps = 4;
    hpim::rt::HeteroRuntime runtime(config);
    return runtime.train(hpim::nn::buildModel(model)).execution;
}

} // namespace

int
main()
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;
    using harness::fmtRatio;

    harness::banner(std::cout,
                    "Fig. 13: execution time w/ and w/o RC and OP");

    harness::TablePrinter table(
        {"model", "Progr PIM", "Fixed PIM", "Hetero (no RC/OP)",
         "Hetero +RC", "Hetero +OP", "Hetero +RC+OP",
         "Fixed/no-RC-OP [1.07-1.3x]", "no-RC-OP/full [<=3.8x]"});

    for (nn::ModelId model : nn::cnnModels()) {
        auto progr =
            baseline::runSystem(SystemKind::ProgrPimOnly, model);
        auto fixed =
            baseline::runSystem(SystemKind::FixedPimOnly, model);
        auto none = runHetero(true, false, false, model);
        auto rc = runHetero(true, true, false, model);
        auto op = runHetero(true, false, true, model);
        auto both = runHetero(true, true, true, model);
        table.addRow({nn::modelName(model),
                      fmt(progr.stepSec * 1e3, 1),
                      fmt(fixed.stepSec * 1e3, 1),
                      fmt(none.stepSec * 1e3, 1),
                      fmt(rc.stepSec * 1e3, 1),
                      fmt(op.stepSec * 1e3, 1),
                      fmt(both.stepSec * 1e3, 1),
                      fmtRatio(fixed.stepSec / none.stepSec),
                      fmtRatio(none.stepSec / both.stepSec)});
    }
    table.print(std::cout);
    return 0;
}
