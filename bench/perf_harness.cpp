/**
 * @file
 * Simulator performance harness (docs/PERFORMANCE.md).
 *
 * Times the simulator's hot paths in-process (the paper benches spend
 * a meaningful fraction of their ~tens-of-ms wall time in process
 * startup, which says nothing about simulator throughput):
 *
 *  - fig8_exec_time: the full Fig. 8 grid (5 models x 5 systems),
 *    run serially -- the representative end-to-end sweep;
 *  - fault_sweep: the resilience bench's two sweeps (bank kills +
 *    fault rates) -- exercises the retry/degrade machinery;
 *  - event_queue_micro: schedule/reschedule/deschedule/callback storm
 *    on sim::EventQueue;
 *  - vault_micro: enqueue/drain storm on mem::VaultController.
 *
 * Each workload runs --repeat times and reports the fastest wall
 * time (robust to scheduling noise; later repetitions also run with
 * the memo cache warm, which is the steady state sweeps see). The
 * result goes to --out as BENCH_sim_core.json, the repo's recorded
 * perf trajectory. With --baseline FILE the harness compares against
 * a previous file and exits non-zero when any workload regressed
 * more than --max-regress percent (CI perf-smoke).
 *
 * usage: perf_harness [--out FILE] [--repeat N] [--baseline FILE]
 *                     [--max-regress PCT]
 */

#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/presets.hh"
#include "harness/json.hh"
#include "harness/json_writer.hh"
#include "harness/table_printer.hh"
#include "mem/dram_timing.hh"
#include "mem/vault_controller.hh"
#include "nn/models.hh"
#include "rt/executor.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace {

using namespace hpim;

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Checksum sink so the optimizer cannot drop a workload's body. */
volatile double g_sink = 0.0;

void
runFig8Grid()
{
    const std::vector<baseline::SystemKind> systems = {
        baseline::SystemKind::CpuOnly, baseline::SystemKind::Gpu,
        baseline::SystemKind::ProgrPimOnly,
        baseline::SystemKind::FixedPimOnly,
        baseline::SystemKind::HeteroPim};
    double sum = 0.0;
    for (nn::ModelId model : nn::cnnModels()) {
        for (baseline::SystemKind kind : systems)
            sum += baseline::runSystem(kind, model, 4).stepSec;
    }
    g_sink = sum;
}

void
runFaultSweep()
{
    auto faulted = [](sim::FaultConfig faults) {
        rt::SystemConfig config =
            baseline::makeConfig(baseline::SystemKind::HeteroPim);
        config.faults = faults;
        config.faults.enabled = true;
        nn::Graph graph = nn::buildModel(nn::ModelId::AlexNet);
        rt::Executor executor(config);
        return executor.run(graph, 2).stepSec;
    };
    double sum = 0.0;
    for (std::uint32_t kills : {0u, 4u, 8u, 12u, 16u, 24u, 32u}) {
        sim::FaultConfig faults;
        faults.killBanks = kills;
        faults.transientRatePerOp = 1e-3;
        sum += faulted(faults);
    }
    const double rates[][2] = {{0.0, 0.0},   {1e-4, 0.0},
                               {1e-3, 1e-4}, {1e-2, 1e-3},
                               {0.05, 1e-2}, {1.0, 0.0}};
    for (const auto &rate : rates) {
        sim::FaultConfig faults;
        faults.transientRatePerOp = rate[0];
        faults.stallRatePerOp = rate[1];
        sum += faulted(faults);
    }
    g_sink = sum;
}

void
runEventQueueMicro()
{
    sim::EventQueue queue;
    // A rotating population of events with interleaved reschedules
    // and deschedules: the access pattern the executor produces.
    constexpr std::size_t kEvents = 512;
    constexpr std::uint64_t kRounds = 2000;
    std::deque<sim::LambdaEvent> events; // Events are pinned in place
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < kEvents; ++i)
        events.emplace_back([&fired] { ++fired; });
    sim::Tick t = 1;
    for (std::size_t i = 0; i < kEvents; ++i)
        queue.schedule(&events[i], t + (i * 37) % 1024);
    for (std::uint64_t round = 0; round < kRounds; ++round) {
        // Touch a window of events: reschedule most, deschedule and
        // re-add some, and pump callbacks through the pool.
        for (std::size_t i = 0; i < 64; ++i) {
            sim::LambdaEvent &ev =
                events[(round * 17 + i * 5) % kEvents];
            queue.reschedule(&ev,
                             queue.now() + 1 + (round + i * 13) % 512);
        }
        sim::LambdaEvent &victim = events[(round * 29) % kEvents];
        if (victim.scheduled())
            queue.deschedule(&victim);
        queue.schedule(&victim, queue.now() + 1 + round % 256);
        queue.scheduleCallback(queue.now() + 1 + round % 128,
                               [&fired] { ++fired; });
        for (int i = 0; i < 8; ++i)
            queue.runOne();
    }
    while (queue.runOne()) {
    }
    g_sink = static_cast<double>(fired + queue.processedCount());
}

void
runVaultMicro()
{
    mem::VaultController vault(mem::hmc2Timing(), 8);
    constexpr std::uint64_t kRounds = 200;
    constexpr std::uint32_t kRequests = 512;
    double sum = 0.0;
    for (std::uint64_t round = 0; round < kRounds; ++round) {
        for (std::uint32_t i = 0; i < kRequests; ++i) {
            mem::MemoryRequest req;
            req.id = i;
            req.type = (i % 3 == 0) ? mem::AccessType::Write
                                    : mem::AccessType::Read;
            req.bytes = 64;
            req.arrival = i * 2;
            mem::DramCoord coord{};
            coord.bank = i % 8;
            // Bursts of row locality with periodic conflicts.
            coord.row = (i / 16) % 32 + (i % 7 == 0 ? 1000 : 0);
            vault.enqueue(req, coord);
        }
        auto done = vault.drain();
        sum += static_cast<double>(done.back().completion);
    }
    g_sink = sum;
}

struct Workload
{
    const char *name;
    void (*fn)();
};

const Workload kWorkloads[] = {
    {"fig8_exec_time", runFig8Grid},
    {"fault_sweep", runFaultSweep},
    {"event_queue_micro", runEventQueueMicro},
    {"vault_micro", runVaultMicro},
};

struct Result
{
    std::string name;
    double bestSec = 0.0;
    std::vector<double> runsSec;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_sim_core.json";
    std::string baseline;
    int repeat = 5;
    double max_regress_pct = 25.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            fatal_if(i + 1 >= argc, flag, " needs a value");
            return argv[++i];
        };
        if (arg == "--out")
            out = next("--out");
        else if (arg == "--repeat")
            repeat = std::stoi(next("--repeat"));
        else if (arg == "--baseline")
            baseline = next("--baseline");
        else if (arg == "--max-regress")
            max_regress_pct = std::stod(next("--max-regress"));
        else
            fatal("unknown argument '", arg,
                  "'\nusage: perf_harness [--out FILE] [--repeat N] "
                  "[--baseline FILE] [--max-regress PCT]");
    }
    fatal_if(repeat < 1, "--repeat must be at least 1");

    std::vector<Result> results;
    for (const Workload &workload : kWorkloads) {
        Result result;
        result.name = workload.name;
        result.bestSec = 1e300;
        for (int r = 0; r < repeat; ++r) {
            double start = nowSec();
            workload.fn();
            double elapsed = nowSec() - start;
            result.runsSec.push_back(elapsed);
            result.bestSec = std::min(result.bestSec, elapsed);
        }
        results.push_back(std::move(result));
    }

    hpim::harness::TablePrinter table(
        {"workload", "best (ms)", "runs"});
    for (const Result &result : results) {
        table.addRow({result.name,
                      hpim::harness::fmt(result.bestSec * 1e3, 2),
                      std::to_string(result.runsSec.size())});
    }
    table.print(std::cout);

    {
        std::ofstream file(out, std::ios::trunc);
        fatal_if(!file, "cannot write ", out);
        hpim::harness::json::Writer writer(file);
        writer.beginObject();
        writer.field("schema", std::int64_t(1));
        writer.field("bench", "sim_core");
        writer.field("repeat", std::int64_t(repeat));
        writer.key("workloads").beginObject();
        for (const Result &result : results) {
            writer.key(result.name).beginObject();
            writer.field("best_wall_s", result.bestSec);
            writer.key("runs_wall_s").beginArray();
            for (double sec : result.runsSec)
                writer.value(sec);
            writer.endArray();
            writer.endObject();
        }
        writer.endObject();
        writer.endObject();
        file << "\n";
    }
    std::cout << "[perf] wrote " << out << "\n";

    if (baseline.empty())
        return 0;

    std::ifstream base_file(baseline);
    fatal_if(!base_file, "cannot read baseline ", baseline);
    std::stringstream buffer;
    buffer << base_file.rdbuf();
    hpim::harness::json::Value base =
        hpim::harness::json::parse(buffer.str());
    const auto &base_workloads = base.at("workloads");
    bool failed = false;
    for (const Result &result : results) {
        const auto *entry = base_workloads.find(result.name);
        if (entry == nullptr) {
            std::cout << "[perf] " << result.name
                      << ": no baseline entry, skipping\n";
            continue;
        }
        double base_sec = entry->at("best_wall_s").asDouble();
        double limit = base_sec * (1.0 + max_regress_pct / 100.0);
        double ratio = base_sec > 0.0 ? result.bestSec / base_sec : 1.0;
        std::cout << "[perf] " << result.name << ": "
                  << hpim::harness::fmt(result.bestSec * 1e3, 2)
                  << " ms vs baseline "
                  << hpim::harness::fmt(base_sec * 1e3, 2) << " ms ("
                  << hpim::harness::fmt(ratio * 100.0, 1) << "%)";
        if (result.bestSec > limit) {
            std::cout << " REGRESSION (> "
                      << hpim::harness::fmt(max_regress_pct, 0)
                      << "% over baseline)";
            failed = true;
        }
        std::cout << "\n";
    }
    return failed ? 1 : 0;
}
