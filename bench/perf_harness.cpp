/**
 * @file
 * Simulator performance harness (docs/PERFORMANCE.md).
 *
 * Times the simulator's hot paths in-process (the paper benches spend
 * a meaningful fraction of their ~tens-of-ms wall time in process
 * startup, which says nothing about simulator throughput):
 *
 *  - fig8_exec_time: the full Fig. 8 grid (5 models x 5 systems),
 *    run serially -- the representative end-to-end sweep;
 *  - fault_sweep: the resilience bench's two sweeps (bank kills +
 *    fault rates) -- exercises the retry/degrade machinery;
 *  - event_queue_micro: schedule/reschedule/deschedule/callback storm
 *    on sim::EventQueue;
 *  - vault_micro: enqueue/drain storm on mem::VaultController;
 *  - graph_neighbors: the committed transformer_train.json user graph
 *    re-parsed and re-prepared per point across neighboring system
 *    configs -- the delta-evaluation (sub-graph signature) hot path;
 *  - builder_wide: a wide synthetic ~500-op nn::Builder training
 *    graph across neighboring configs, same delta-evaluation path at
 *    10x the op count.
 *
 * Each workload runs --repeat times and reports the fastest wall
 * time (robust to scheduling noise; later repetitions also run with
 * the memo cache warm, which is the steady state sweeps see). The
 * graph workloads additionally measure a cold (--no-sim-cache
 * equivalent) vs warm-cache pass and report the delta-evaluation
 * speedup, which CI gates (docs/PERFORMANCE.md). The result goes to
 * --out as BENCH_sim_core.json, the repo's recorded perf trajectory.
 * With --baseline FILE the harness compares against a previous file
 * and exits non-zero when any workload regressed more than
 * --max-regress percent, printing the per-workload regression deltas
 * (CI perf-smoke).
 *
 * usage: perf_harness [--out FILE] [--repeat N] [--baseline FILE]
 *                     [--max-regress PCT] [--graphs DIR]
 */

#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/presets.hh"
#include "harness/json.hh"
#include "harness/json_writer.hh"
#include "harness/table_printer.hh"
#include "mem/dram_timing.hh"
#include "mem/vault_controller.hh"
#include "nn/graph_builder.hh"
#include "nn/graph_io.hh"
#include "nn/models.hh"
#include "rt/executor.hh"
#include "sim/event_queue.hh"
#include "sim/hash.hh"
#include "sim/logging.hh"
#include "sim/memo_cache.hh"

namespace {

using namespace hpim;

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Checksum sink so the optimizer cannot drop a workload's body. */
volatile double g_sink = 0.0;

void
runFig8Grid()
{
    const std::vector<baseline::SystemKind> systems = {
        baseline::SystemKind::CpuOnly, baseline::SystemKind::Gpu,
        baseline::SystemKind::ProgrPimOnly,
        baseline::SystemKind::FixedPimOnly,
        baseline::SystemKind::HeteroPim};
    double sum = 0.0;
    for (nn::ModelId model : nn::cnnModels()) {
        for (baseline::SystemKind kind : systems)
            sum += baseline::runSystem(kind, model, 4).stepSec;
    }
    g_sink = sum;
}

void
runFaultSweep()
{
    auto faulted = [](sim::FaultConfig faults) {
        rt::SystemConfig config =
            baseline::makeConfig(baseline::SystemKind::HeteroPim);
        config.faults = faults;
        config.faults.enabled = true;
        nn::Graph graph = nn::buildModel(nn::ModelId::AlexNet);
        rt::Executor executor(config);
        return executor.run(graph, 2).stepSec;
    };
    double sum = 0.0;
    for (std::uint32_t kills : {0u, 4u, 8u, 12u, 16u, 24u, 32u}) {
        sim::FaultConfig faults;
        faults.killBanks = kills;
        faults.transientRatePerOp = 1e-3;
        sum += faulted(faults);
    }
    const double rates[][2] = {{0.0, 0.0},   {1e-4, 0.0},
                               {1e-3, 1e-4}, {1e-2, 1e-3},
                               {0.05, 1e-2}, {1.0, 0.0}};
    for (const auto &rate : rates) {
        sim::FaultConfig faults;
        faults.transientRatePerOp = rate[0];
        faults.stallRatePerOp = rate[1];
        sum += faulted(faults);
    }
    g_sink = sum;
}

void
runEventQueueMicro()
{
    sim::EventQueue queue;
    // A rotating population of events with interleaved reschedules
    // and deschedules: the access pattern the executor produces.
    constexpr std::size_t kEvents = 512;
    constexpr std::uint64_t kRounds = 2000;
    std::deque<sim::LambdaEvent> events; // Events are pinned in place
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < kEvents; ++i)
        events.emplace_back([&fired] { ++fired; });
    sim::Tick t = 1;
    for (std::size_t i = 0; i < kEvents; ++i)
        queue.schedule(&events[i], t + (i * 37) % 1024);
    for (std::uint64_t round = 0; round < kRounds; ++round) {
        // Touch a window of events: reschedule most, deschedule and
        // re-add some, and pump callbacks through the pool.
        for (std::size_t i = 0; i < 64; ++i) {
            sim::LambdaEvent &ev =
                events[(round * 17 + i * 5) % kEvents];
            queue.reschedule(&ev,
                             queue.now() + 1 + (round + i * 13) % 512);
        }
        sim::LambdaEvent &victim = events[(round * 29) % kEvents];
        if (victim.scheduled())
            queue.deschedule(&victim);
        queue.schedule(&victim, queue.now() + 1 + round % 256);
        queue.scheduleCallback(queue.now() + 1 + round % 128,
                               [&fired] { ++fired; });
        for (int i = 0; i < 8; ++i)
            queue.runOne();
    }
    while (queue.runOne()) {
    }
    g_sink = static_cast<double>(fired + queue.processedCount());
}

void
runVaultMicro()
{
    mem::VaultController vault(mem::hmc2Timing(), 8);
    constexpr std::uint64_t kRounds = 200;
    constexpr std::uint32_t kRequests = 512;
    double sum = 0.0;
    for (std::uint64_t round = 0; round < kRounds; ++round) {
        for (std::uint32_t i = 0; i < kRequests; ++i) {
            mem::MemoryRequest req;
            req.id = i;
            req.type = (i % 3 == 0) ? mem::AccessType::Write
                                    : mem::AccessType::Read;
            req.bytes = 64;
            req.arrival = i * 2;
            mem::DramCoord coord{};
            coord.bank = i % 8;
            // Bursts of row locality with periodic conflicts.
            coord.row = (i / 16) % 32 + (i % 7 == 0 ? 1000 : 0);
            vault.enqueue(req, coord);
        }
        auto done = vault.drain();
        sum += static_cast<double>(done.back().completion);
    }
    g_sink = sum;
}

/** Document text of the transformer_train.json example (read once in
 *  main, before any timing, so file IO never lands in a sample). */
std::string g_transformer_text;

/**
 * Per-point graph materialization, mirroring the serve path: a user
 * graph is a pure function of its document bytes, so a warm cache
 * returns the parsed object and a cold run pays the full JSON parse
 * -- exactly the repeat-submission cost delta-evaluation removes.
 */
std::shared_ptr<const nn::Graph>
neighborGraph()
{
    auto &cache = sim::MemoCache::instance();
    std::uint64_t key = sim::hashString(g_transformer_text);
    if (auto hit = cache.find<nn::Graph>(key, "nn.graph.user"))
        return hit;
    auto built = std::make_shared<const nn::Graph>(
        nn::loadGraph(g_transformer_text));
    cache.put<nn::Graph>(key, "nn.graph.user", built);
    return built;
}

/**
 * A wide synthetic training graph: 32 independent dense towers merged
 * pairwise, closed with trainingStep (backward pass + Adam), ~500
 * lowered ops. The towers are structurally identical, so the per-op
 * signature tier collapses their profile cost even on the first visit
 * to a new CPU config.
 */
nn::Graph
buildWideGraph()
{
    nn::Builder b("bench-wide");
    std::vector<nn::TensorRef> towers;
    for (int tower = 0; tower < 32; ++tower) {
        nn::TensorRef x = b.input(nn::TensorShape({64, 256}));
        x = b.dense(x, 256);
        x = b.layerNorm(x);
        x = b.dense(x, 128);
        towers.push_back(x);
    }
    while (towers.size() > 1) {
        std::vector<nn::TensorRef> merged;
        for (std::size_t i = 0; i + 1 < towers.size(); i += 2)
            merged.push_back(b.add(towers[i], towers[i + 1]));
        if (towers.size() % 2 != 0)
            merged.push_back(towers.back());
        towers = std::move(merged);
    }
    nn::TensorRef logits = b.dense(towers.front(), 16, false);
    return b.trainingStep(logits);
}

/** Cached wide graph (pure function of this binary's builder calls). */
std::shared_ptr<const nn::Graph>
wideGraph()
{
    auto &cache = sim::MemoCache::instance();
    std::uint64_t key = sim::hashString("bench.builder_wide");
    if (auto hit = cache.find<nn::Graph>(key, "nn.graph.user"))
        return hit;
    auto built = std::make_shared<const nn::Graph>(buildWideGraph());
    cache.put<nn::Graph>(key, "nn.graph.user", built);
    return built;
}

/**
 * Sweep a user graph over neighboring system configs, re-materializing
 * the graph per point the way serve/sweep points do. The progr_pims
 * axis shares (graph, cpu, coverage) with its neighbor, so a warm
 * cache serves the whole prepare from "rt.prepared"; the freq axis
 * changes the CPU key and exercises the "rt.profile.op" partial tier
 * across the graph's repeated op shapes.
 */
double
sweepNeighbors(std::shared_ptr<const nn::Graph> (*materialize)(),
               std::uint32_t steps)
{
    double sum = 0.0;
    for (double freq_scale : {1.0, 0.95}) {
        for (std::uint32_t pims : {1u, 2u}) {
            std::shared_ptr<const nn::Graph> graph = materialize();
            sum += baseline::runSystemGraph(
                       baseline::SystemKind::HeteroPim, *graph, steps,
                       freq_scale, pims)
                       .stepSec;
        }
    }
    return sum;
}

void
runGraphNeighbors()
{
    g_sink = sweepNeighbors(neighborGraph, 2);
}

void
runBuilderWide()
{
    g_sink = sweepNeighbors(wideGraph, 1);
}

struct Workload
{
    const char *name;
    void (*fn)();
    /** Measure and report a cold vs warm memo-cache pass. */
    bool cacheSensitive = false;
};

const Workload kWorkloads[] = {
    {"fig8_exec_time", runFig8Grid},
    {"fault_sweep", runFaultSweep},
    {"event_queue_micro", runEventQueueMicro},
    {"vault_micro", runVaultMicro},
    {"graph_neighbors", runGraphNeighbors, true},
    {"builder_wide", runBuilderWide, true},
};

struct Result
{
    std::string name;
    double bestSec = 0.0;
    std::vector<double> runsSec;
    /** Cache-sensitive workloads only (else zero). */
    double coldSec = 0.0; ///< best pass, cache disabled
    double warmSec = 0.0; ///< best pass, cache pre-warmed
    bool hasCacheRuns = false;

    double
    cacheSpeedup() const
    { return warmSec > 0.0 ? coldSec / warmSec : 0.0; }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_sim_core.json";
    std::string baseline;
    std::string graphs_dir = "examples/graphs";
    int repeat = 5;
    double max_regress_pct = 25.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            fatal_if(i + 1 >= argc, flag, " needs a value");
            return argv[++i];
        };
        if (arg == "--out")
            out = next("--out");
        else if (arg == "--repeat")
            repeat = std::stoi(next("--repeat"));
        else if (arg == "--baseline")
            baseline = next("--baseline");
        else if (arg == "--max-regress")
            max_regress_pct = std::stod(next("--max-regress"));
        else if (arg == "--graphs")
            graphs_dir = next("--graphs");
        else
            fatal("unknown argument '", arg,
                  "'\nusage: perf_harness [--out FILE] [--repeat N] "
                  "[--baseline FILE] [--max-regress PCT] "
                  "[--graphs DIR]");
    }
    fatal_if(repeat < 1, "--repeat must be at least 1");

    {
        // Read the example graph before any timing starts: file IO
        // must never land in a sample.
        std::string path = graphs_dir + "/transformer_train.json";
        std::ifstream file(path);
        fatal_if(!file, "cannot read ", path,
                 " (run from the repo root or pass --graphs DIR)");
        std::stringstream text;
        text << file.rdbuf();
        g_transformer_text = text.str();
    }

    auto best_of = [&](void (*fn)()) {
        double best = 1e300;
        for (int r = 0; r < repeat; ++r) {
            double start = nowSec();
            fn();
            best = std::min(best, nowSec() - start);
        }
        return best;
    };

    std::vector<Result> results;
    for (const Workload &workload : kWorkloads) {
        Result result;
        result.name = workload.name;
        result.bestSec = 1e300;
        for (int r = 0; r < repeat; ++r) {
            double start = nowSec();
            workload.fn();
            double elapsed = nowSec() - start;
            result.runsSec.push_back(elapsed);
            result.bestSec = std::min(result.bestSec, elapsed);
        }
        if (workload.cacheSensitive) {
            // Cold: the --no-sim-cache sweep configuration. Warm: one
            // untimed pass populates the cache, then the steady state
            // a neighboring-config sweep sees. Results are
            // byte-identical either way (sim::MemoCache contract);
            // only the wall time differs.
            hpim::sim::MemoCache::instance().clear();
            hpim::sim::MemoCache::setEnabled(false);
            result.coldSec = best_of(workload.fn);
            hpim::sim::MemoCache::setEnabled(true);
            hpim::sim::MemoCache::instance().clear();
            workload.fn();
            result.warmSec = best_of(workload.fn);
            result.hasCacheRuns = true;
        }
        results.push_back(std::move(result));
    }

    hpim::harness::TablePrinter table(
        {"workload", "best (ms)", "runs"});
    for (const Result &result : results) {
        table.addRow({result.name,
                      hpim::harness::fmt(result.bestSec * 1e3, 2),
                      std::to_string(result.runsSec.size())});
    }
    table.print(std::cout);

    for (const Result &result : results) {
        if (!result.hasCacheRuns)
            continue;
        std::cout << "[perf] " << result.name << ": cache speedup "
                  << hpim::harness::fmt(result.cacheSpeedup(), 2)
                  << "x (cold "
                  << hpim::harness::fmt(result.coldSec * 1e3, 2)
                  << " ms, warm "
                  << hpim::harness::fmt(result.warmSec * 1e3, 2)
                  << " ms)\n";
    }

    {
        std::ofstream file(out, std::ios::trunc);
        fatal_if(!file, "cannot write ", out);
        hpim::harness::json::Writer writer(file);
        writer.beginObject();
        writer.field("schema", std::int64_t(1));
        writer.field("bench", "sim_core");
        writer.field("repeat", std::int64_t(repeat));
        writer.key("workloads").beginObject();
        for (const Result &result : results) {
            writer.key(result.name).beginObject();
            writer.field("best_wall_s", result.bestSec);
            writer.key("runs_wall_s").beginArray();
            for (double sec : result.runsSec)
                writer.value(sec);
            writer.endArray();
            if (result.hasCacheRuns) {
                writer.field("cold_wall_s", result.coldSec);
                writer.field("warm_wall_s", result.warmSec);
                writer.field("cache_speedup", result.cacheSpeedup());
            }
            writer.endObject();
        }
        writer.endObject();
        writer.endObject();
        file << "\n";
    }
    std::cout << "[perf] wrote " << out << "\n";

    if (baseline.empty())
        return 0;

    std::ifstream base_file(baseline);
    fatal_if(!base_file, "cannot read baseline ", baseline);
    std::stringstream buffer;
    buffer << base_file.rdbuf();
    hpim::harness::json::Value base =
        hpim::harness::json::parse(buffer.str());
    const auto &base_workloads = base.at("workloads");
    struct Regression
    {
        std::string name;
        double deltaPct;
    };
    std::vector<Regression> regressions;
    for (const Result &result : results) {
        const auto *entry = base_workloads.find(result.name);
        if (entry == nullptr) {
            std::cout << "[perf] " << result.name
                      << ": no baseline entry, skipping\n";
            continue;
        }
        double base_sec = entry->at("best_wall_s").asDouble();
        double limit = base_sec * (1.0 + max_regress_pct / 100.0);
        double delta_pct =
            base_sec > 0.0
                ? (result.bestSec / base_sec - 1.0) * 100.0
                : 0.0;
        std::cout << "[perf] " << result.name << ": "
                  << hpim::harness::fmt(result.bestSec * 1e3, 2)
                  << " ms vs baseline "
                  << hpim::harness::fmt(base_sec * 1e3, 2) << " ms ("
                  << (delta_pct >= 0.0 ? "+" : "")
                  << hpim::harness::fmt(delta_pct, 1) << "%)";
        if (result.bestSec > limit) {
            std::cout << " REGRESSION (limit "
                      << (max_regress_pct >= 0.0 ? "+" : "")
                      << hpim::harness::fmt(max_regress_pct, 0)
                      << "%)";
            regressions.push_back({result.name, delta_pct});
        }
        std::cout << "\n";
    }
    if (regressions.empty())
        return 0;
    // The failure line CI quotes: every offender with its delta, not
    // just the first name.
    std::cout << "[perf] FAIL:";
    for (std::size_t i = 0; i < regressions.size(); ++i) {
        std::cout << (i == 0 ? " " : ", ") << regressions[i].name
                  << " +"
                  << hpim::harness::fmt(regressions[i].deltaPct, 1)
                  << "% (limit "
                  << (max_regress_pct >= 0.0 ? "+" : "")
                  << hpim::harness::fmt(max_regress_pct, 0) << "%)";
    }
    std::cout << "\n";
    return 1;
}
