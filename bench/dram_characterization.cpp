/**
 * @file
 * Substrate validation tables for the 3D-stacked memory model:
 * idle-latency ladder (row hit / miss / conflict), per-vault and
 * whole-stack streaming bandwidth, refresh overhead, FR-FCFS gain,
 * and interleave sensitivity. These are the numbers the device
 * roofline models assume; run this to sanity-check them.
 */

#include <iostream>

#include "harness/table_printer.hh"
#include "mem/hmc_stack.hh"
#include "sim/rng.hh"

using namespace hpim;
using harness::fmt;

namespace {

/** Stream @p requests sequential reads through a fresh stack. */
double
streamBandwidth(mem::HmcConfig config, std::uint64_t requests,
                std::uint32_t bytes)
{
    mem::HmcStack stack{config};
    for (std::uint64_t i = 0; i < requests; ++i) {
        mem::MemoryRequest req;
        req.id = i;
        req.addr = i * bytes;
        req.bytes = bytes;
        stack.enqueue(req);
    }
    auto done = stack.drainAll();
    double seconds = sim::ticksToSeconds(done.back().completion);
    return requests * double(bytes) / seconds;
}

} // namespace

int
main()
{
    harness::banner(std::cout,
                    "HMC-2.0-like stack: latency ladder (312.5 MHz)");
    {
        auto timing = mem::hmc2Timing();
        harness::TablePrinter table({"access", "latency (ns)"});
        table.addRow({"row hit",
                      fmt(sim::ticksToSeconds(timing.rowHitLatency())
                              * 1e9,
                          1)});
        table.addRow(
            {"row closed (ACT+CAS)",
             fmt(sim::ticksToSeconds(timing.rowClosedLatency()) * 1e9,
                 1)});
        table.addRow(
            {"row conflict (PRE+ACT+CAS)",
             fmt(sim::ticksToSeconds(timing.rowConflictLatency())
                     * 1e9,
                 1)});
        table.print(std::cout);
    }

    harness::banner(std::cout, "Streaming bandwidth");
    {
        harness::TablePrinter table(
            {"scope", "measured (GB/s)", "peak (GB/s)"});
        mem::HmcConfig config;
        mem::HmcStack probe{config};
        // One vault: restrict the stream to vault 0 addresses.
        mem::HmcStack one{config};
        std::uint64_t n = 4096;
        for (std::uint64_t i = 0; i < n; ++i) {
            mem::MemoryRequest req;
            req.id = i;
            // Stay in vault 0: row chunks are 256 B x 32 vaults apart.
            req.addr = (i / 8) * (256ULL * 32) + (i % 8) * 32;
            req.bytes = 32;
            one.enqueue(req);
        }
        auto done = one.drainAll();
        double vault_bw =
            n * 32.0 / sim::ticksToSeconds(done.back().completion);
        table.addRow({"one vault", fmt(vault_bw / 1e9, 2),
                      fmt(probe.perVaultBandwidth() / 1e9, 2)});
        double stack_bw = streamBandwidth(config, 32768, 64);
        table.addRow({"whole stack (32 vaults)",
                      fmt(stack_bw / 1e9, 2),
                      fmt(probe.peakInternalBandwidth() / 1e9, 2)});
        table.addRow({"external links", "-",
                      fmt(probe.peakExternalBandwidth() / 1e9, 2)});
        table.print(std::cout);
    }

    harness::banner(std::cout,
                    "Frequency scaling of streaming bandwidth");
    {
        harness::TablePrinter table({"PIM frequency", "GB/s"});
        for (double scale : {1.0, 2.0, 4.0}) {
            mem::HmcConfig config;
            config.frequencyScale = scale;
            table.addRow({fmt(scale, 0) + "x",
                          fmt(streamBandwidth(config, 16384, 64) / 1e9,
                              2)});
        }
        table.print(std::cout);
    }

    harness::banner(std::cout, "Scheduling policy and interleaving");
    {
        harness::TablePrinter table({"variant", "random-access GB/s"});
        sim::Rng rng(11);
        auto random_bw = [&rng](mem::HmcConfig config) {
            mem::HmcStack stack{config};
            const std::uint64_t n = 16384;
            for (std::uint64_t i = 0; i < n; ++i) {
                mem::MemoryRequest req;
                req.id = i;
                req.addr = rng.next() % stack.capacity();
                req.bytes = 64;
                stack.enqueue(req);
            }
            auto done = stack.drainAll();
            return n * 64.0
                   / sim::ticksToSeconds(done.back().completion);
        };
        mem::HmcConfig frfcfs;
        mem::HmcConfig fcfs;
        fcfs.policy = mem::SchedulingPolicy::FCFS;
        mem::HmcConfig vabarow;
        vabarow.interleave = mem::Interleave::VaBaRoCo;
        table.addRow({"FR-FCFS + RoBaVaCo (default)",
                      fmt(random_bw(frfcfs) / 1e9, 2)});
        table.addRow({"FCFS + RoBaVaCo",
                      fmt(random_bw(fcfs) / 1e9, 2)});
        table.addRow({"FR-FCFS + VaBaRoCo",
                      fmt(random_bw(vabarow) / 1e9, 2)});
        table.print(std::cout);
    }

    harness::banner(std::cout, "Refresh overhead on a long stream");
    {
        // Spread a stream across ~8 refresh intervals of one vault.
        mem::HmcStack stack{mem::HmcConfig{}};
        auto timing = stack.timing();
        sim::Tick refi = sim::Tick(timing.tREFI) * timing.tCK;
        const std::uint64_t n = 2048;
        for (std::uint64_t i = 0; i < n; ++i) {
            mem::MemoryRequest req;
            req.id = i;
            req.addr = (i % 8) * 32; // vault 0
            req.bytes = 32;
            req.arrival = i * refi / 256;
            stack.enqueue(req);
        }
        stack.drainAll();
        std::uint64_t refreshes = stack.vault(0).stats().refreshRounds;
        std::cout << "refresh rounds during the stream: " << refreshes
                  << " (one per "
                  << fmt(sim::ticksToSeconds(refi) * 1e6, 2)
                  << " us)\n";
    }
    return 0;
}
