/**
 * @file
 * Chaos harness for the host-IO fail-point machinery
 * (docs/RESILIENCE.md, "Host-IO fault injection"). Two legs:
 *
 *  1. *Journal chaos*: fork/exec the fault_sweep bench with
 *     HPIM_FAILPOINTS armed in the child environment, journaling
 *     into a scratch directory. Per scenario the child must exit 0
 *     (transient faults absorbed by the bounded retry) or 75
 *     (durable failure: journal sealed at the last good record, the
 *     typed `[sweep] journal IO failure` diagnostic on stderr) --
 *     never any other status, never a signal death. A clean rerun
 *     over the surviving journal must exit 0 and print a data table
 *     byte-identical to the uninjected reference (footer lines
 *     excluded, exactly like the CI determinism diff).
 *
 *  2. *Serve chaos*: an in-process serve::Server with serve.send /
 *     serve.recv fail points armed. A transient (EINTR) storm must
 *     be invisible -- every request answered. A hard-fault (EIO)
 *     storm may tear individual connections (the client reconnects
 *     and resends, or surfaces a typed ProtocolError), but the
 *     daemon must keep running, answer a clean probe once the fail
 *     points are cleared, and shut down cleanly.
 *
 * Exits 0 when every invariant held, 1 otherwise, with one line per
 * violated invariant. CI's chaos job runs this under ASan.
 *
 * usage: chaos_sweep [--fault-sweep PATH] [--keep]
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/failpoint.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/logging.hh"

extern char **environ;

namespace {

using namespace hpim;

int g_failures = 0;

/** Record one invariant check; prints and counts a violation. */
void
check(bool ok, const std::string &what)
{
    if (ok) {
        std::cout << "[chaos] ok: " << what << "\n";
    } else {
        std::cout << "[chaos] FAIL: " << what << "\n";
        ++g_failures;
    }
}

/** A finished child process: status plus captured output. */
struct ChildResult
{
    bool exited = false;  ///< false: killed by a signal
    int exitCode = -1;
    std::string out;
    std::string err;
};

/**
 * Fork/exec @p argv (argv[0] is the binary path) with
 * HPIM_FAILPOINTS=@p failpoints in the environment (removed when
 * empty), capturing stdout and stderr separately.
 */
ChildResult
runChild(const std::vector<std::string> &argv,
         const std::string &failpoints)
{
    int out_pipe[2], err_pipe[2];
    fatal_if(::pipe(out_pipe) != 0 || ::pipe(err_pipe) != 0,
             "pipe: ", std::strerror(errno));

    // Child environment: parent's, with HPIM_FAILPOINTS replaced.
    std::vector<std::string> env_store;
    for (char **e = environ; *e != nullptr; ++e) {
        if (std::strncmp(*e, "HPIM_FAILPOINTS=", 16) != 0)
            env_store.push_back(*e);
    }
    if (!failpoints.empty())
        env_store.push_back("HPIM_FAILPOINTS=" + failpoints);
    std::vector<char *> envp;
    for (std::string &e : env_store)
        envp.push_back(e.data());
    envp.push_back(nullptr);
    std::vector<std::string> arg_store = argv;
    std::vector<char *> argp;
    for (std::string &a : arg_store)
        argp.push_back(a.data());
    argp.push_back(nullptr);

    pid_t pid = ::fork();
    fatal_if(pid < 0, "fork: ", std::strerror(errno));
    if (pid == 0) {
        ::dup2(out_pipe[1], STDOUT_FILENO);
        ::dup2(err_pipe[1], STDERR_FILENO);
        ::close(out_pipe[0]);
        ::close(out_pipe[1]);
        ::close(err_pipe[0]);
        ::close(err_pipe[1]);
        ::execve(argp[0], argp.data(), envp.data());
        std::perror("execve");
        ::_exit(127);
    }
    ::close(out_pipe[1]);
    ::close(err_pipe[1]);

    ChildResult result;
    auto drain = [](int fd, std::string &into) {
        char chunk[4096];
        for (;;) {
            ssize_t n = ::read(fd, chunk, sizeof chunk);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                break;
            into.append(chunk, static_cast<std::size_t>(n));
        }
        ::close(fd);
    };
    // stderr stays small (diagnostic lines); drain stdout first.
    drain(out_pipe[0], result.out);
    drain(err_pipe[0], result.err);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    result.exited = WIFEXITED(status);
    result.exitCode = result.exited ? WEXITSTATUS(status) : -1;
    return result;
}

/**
 * Drop the nondeterministic `[sweep] ...` footer lines -- the same
 * normalization CI's determinism diff applies -- leaving the data
 * tables, which must be byte-identical across runs.
 */
std::string
stripFooter(const std::string &text)
{
    std::istringstream is(text);
    std::ostringstream os;
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("[sweep]", 0) == 0)
            continue;
        os << line << '\n';
    }
    return os.str();
}

/** One journal-chaos scenario. */
struct Scenario
{
    const char *name;
    const char *failpoints;
    bool transientOnly; ///< absorbed: the injected run must exit 0
};

void
journalChaos(const std::string &fault_sweep, const std::string &scratch,
             bool keep)
{
    // Uninjected reference table.
    const ChildResult ref = runChild(
        {fault_sweep, "--jobs", "2"}, "");
    check(ref.exited && ref.exitCode == 0,
          "reference fault_sweep run exits 0");
    const std::string ref_table = stripFooter(ref.out);
    check(!ref_table.empty(), "reference run printed a data table");

    const std::vector<Scenario> scenarios = {
        {"append-enospc", "journal.append.write=after(4):enospc",
         false},
        {"append-fsync", "journal.append.fsync=after(2):fsync", false},
        {"append-eio-every", "journal.append.write=every(6):eio",
         false},
        {"header-rename", "journal.header.rename=after(0):rename",
         false},
        {"dir-fsync", "journal.dir.fsync=after(1):fsync", false},
        {"claim-open", "journal.claim.open=after(2):eio", false},
        {"append-alloc", "journal.append.write=after(5):alloc", false},
        {"short-writes", "journal.append.write=every(4):short(7)",
         true},
        {"eintr-storm",
         "journal.append.write=every(3):eintr;"
         "journal.append.fsync=every(5):eintr",
         true},
        {"prob-enospc", "journal.append.write=prob(0.35,42):enospc",
         false},
    };

    for (const Scenario &scenario : scenarios) {
        const std::string dir =
            scratch + "/journal-" + scenario.name;
        const std::string label(scenario.name);

        const ChildResult injected = runChild(
            {fault_sweep, "--jobs", "2", "--journal", dir},
            scenario.failpoints);
        if (scenario.transientOnly) {
            check(injected.exited && injected.exitCode == 0,
                  label + ": transient faults absorbed (exit 0)");
            check(stripFooter(injected.out) == ref_table,
                  label + ": injected table byte-identical");
        } else {
            const bool clean_status =
                injected.exited
                && (injected.exitCode == 0 || injected.exitCode == 75);
            check(clean_status,
                  label + ": exit 0 or 75 (got "
                      + (injected.exited
                             ? std::to_string(injected.exitCode)
                             : std::string("signal death"))
                      + ")");
            if (injected.exited && injected.exitCode == 75) {
                check(injected.err.find("journal IO failure")
                          != std::string::npos,
                      label + ": typed diagnostic on stderr");
            }
        }

        // Clean resume over the surviving journal: byte-identical
        // data table, whatever the injection tore mid-run.
        const ChildResult resumed = runChild(
            {fault_sweep, "--jobs", "2", "--journal", dir}, "");
        check(resumed.exited && resumed.exitCode == 0,
              label + ": clean resume exits 0");
        check(stripFooter(resumed.out) == ref_table,
              label + ": resumed table byte-identical to reference");

        if (!keep) {
            const ChildResult rm = runChild(
                {"/bin/rm", "-rf", dir}, "");
            (void)rm;
        }
    }
}

void
serveChaos()
{
    const std::string socket_path =
        "/tmp/hpim_chaos." + std::to_string(::getpid()) + ".sock";
    serve::ServerOptions options;
    options.socketPath = socket_path;
    options.workers = 2;
    serve::Server server(options);
    std::thread server_thread([&server] { server.run(); });

    auto hammer = [&](std::size_t count, std::uint64_t id_base,
                      std::size_t &answered, std::size_t &torn) {
        serve::ClientOptions copts;
        copts.socketPath = socket_path;
        copts.ioTimeoutMs = 60'000.0;
        answered = 0;
        torn = 0;
        for (std::size_t i = 0; i < count; ++i) {
            // Fresh client per request: a torn connection must not
            // poison later calls.
            serve::Client client(copts);
            serve::Request request;
            request.id = id_base + i;
            request.kind = serve::RequestKind::Simulate;
            request.sim.model = "alexnet";
            request.sim.system = "hetero";
            request.sim.steps = 1 + (i % 2);
            try {
                serve::Response response = client.call(request);
                if (response.ok)
                    ++answered;
                else
                    ++torn; // typed rejection still counts as a reply
            } catch (const serve::ProtocolError &) {
                ++torn; // connection torn by an injected hard fault
            }
        }
    };

    // Warm-up: populate the memo cache so the storm rounds are IO
    // bound, not simulation bound.
    std::size_t answered = 0, torn = 0;
    hammer(2, 1, answered, torn);
    check(answered == 2, "serve warm-up answered");

    // Transient storm: EINTR on send and recv must be invisible.
    harness::configureFailPoints(
        "serve.send=every(3):eintr;serve.recv=every(4):eintr");
    hammer(24, 100, answered, torn);
    harness::clearFailPoints();
    check(answered == 24 && torn == 0,
          "EINTR storm absorbed: 24/24 answered ("
              + std::to_string(answered) + " answered, "
              + std::to_string(torn) + " torn)");

    // Hard-fault storm: EIO teardowns and short frames may tear
    // connections but must never kill the daemon or hang a client.
    harness::configureFailPoints(
        "serve.send=every(5):eio;serve.recv=every(7):short(3)");
    hammer(24, 200, answered, torn);
    harness::clearFailPoints();
    check(answered + torn == 24,
          "EIO storm: every request answered or torn ("
              + std::to_string(answered) + " answered, "
              + std::to_string(torn) + " torn)");

    // The daemon must have survived: a clean probe succeeds.
    hammer(2, 300, answered, torn);
    check(answered == 2, "daemon alive after the storm");

    server.requestStop();
    server_thread.join();
    check(true, "daemon shut down cleanly");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string fault_sweep;
    bool keep = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--fault-sweep") {
            fatal_if(i + 1 >= argc, "--fault-sweep needs a path");
            fault_sweep = argv[++i];
        } else if (arg == "--keep") {
            keep = true;
        } else {
            fatal("unknown argument '", arg,
                  "'\nusage: chaos_sweep [--fault-sweep PATH] "
                  "[--keep]");
        }
    }
    if (fault_sweep.empty()) {
        // Default: the fault_sweep binary next to this one.
        std::string self = argv[0];
        std::size_t slash = self.rfind('/');
        fault_sweep = (slash == std::string::npos
                           ? std::string(".")
                           : self.substr(0, slash))
                      + "/fault_sweep";
    }
    if (::access(fault_sweep.c_str(), X_OK) != 0)
        fatal("fault_sweep binary not found at '", fault_sweep,
              "' (build it, or pass --fault-sweep PATH)");

    std::string scratch = "/tmp/hpim_chaos." + std::to_string(::getpid());
    fatal_if(::mkdir(scratch.c_str(), 0755) != 0 && errno != EEXIST,
             "mkdir '", scratch, "': ", std::strerror(errno));

    journalChaos(fault_sweep, scratch, keep);
    serveChaos();

    if (!keep)
        (void)runChild({"/bin/rm", "-rf", scratch}, "");

    if (g_failures > 0) {
        std::cout << "[chaos] " << g_failures
                  << " invariant(s) violated\n";
        return 1;
    }
    std::cout << "[chaos] all invariants held\n";
    return 0;
}
