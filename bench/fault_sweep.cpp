/**
 * @file
 * Resilience sweep: how training on the heterogeneous PIM degrades as
 * fixed-function banks are killed and as transient fault rates rise
 * (docs/RESILIENCE.md). Two tables:
 *
 *  1. capacity vs killed banks -- every row uses the same
 *     --fault-seed, so the kill sets are prefixes of each other and
 *     the surviving capacity is monotone non-increasing down the
 *     table by construction;
 *  2. per-op transient/stall fault-rate sweep -- retries, backoff
 *     time, degradations and the resulting step-time inflation.
 *
 * Flags: --jobs N, --seed S (sweep engine), --journal DIR
 * (crash-safe checkpoint/resume), --shard i/N (own one slice of a
 * distributed run; merge the journals with hpim_merge,
 * docs/SWEEP_ENGINE.md), --fault-seed S (fault schedule; default the
 * engine's defaultSeed). Output is deterministic in --fault-seed
 * whatever --jobs says; CI diffs reruns of this binary (minus the
 * [sweep] footer) to enforce it, the kill-and-resume job SIGKILLs a
 * journaled run partway and diffs the resumed output against a clean
 * run, and the shard-validation job runs three --shard processes
 * (one SIGKILLed and restarted), merges, and demands the byte-
 * identical unsharded journal. A sharded process prints a partial
 * table (rows outside its slice default-initialized); only the
 * merged journal's resumed table is contractual.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "baseline/presets.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/executor.hh"
#include "sim/rng.hh"

namespace {

using namespace hpim;

constexpr std::uint32_t kSteps = 2;
constexpr nn::ModelId kModel = nn::ModelId::AlexNet;

rt::ExecutionReport
runFaulted(const sim::FaultConfig &faults)
{
    rt::SystemConfig config =
        baseline::makeConfig(baseline::SystemKind::HeteroPim);
    config.faults = faults;
    config.faults.enabled = true;
    nn::Graph graph = nn::buildModel(kModel);
    rt::Executor executor(config);
    return executor.run(graph, kSteps);
}

std::uint32_t
finalCapacity(const rt::ExecutionReport &report)
{
    return report.capacityTimeline.empty()
               ? 0
               : report.capacityTimeline.back().units;
}

} // namespace

int
main(int argc, char **argv)
{
    using harness::fmt;

    // Split off --fault-seed before the engine parser (which warns on
    // flags it does not know).
    std::uint64_t fault_seed = sim::defaultSeed;
    std::vector<char *> engine_args = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--fault-seed=", 0) == 0) {
            fault_seed = std::stoull(arg.substr(std::strlen("--fault-seed=")));
        } else if (arg == "--fault-seed" && i + 1 < argc) {
            fault_seed = std::stoull(argv[++i]);
        } else {
            engine_args.push_back(argv[i]);
        }
    }
    harness::SweepRunner runner(harness::parseSweepArgs(
        static_cast<int>(engine_args.size()), engine_args.data()));

    harness::banner(std::cout,
                    "Resilience: capacity vs killed banks ("
                        + nn::modelName(kModel) + ", fault seed "
                        + std::to_string(fault_seed) + ")");

    // One row per kill count; the shared seed makes kill set k a
    // prefix of kill set k+1 (FaultModel draws a distinct-bank walk),
    // so surviving capacity can only shrink down the table.
    const std::vector<std::uint32_t> kill_counts = {0,  4,  8,  12,
                                                    16, 24, 32};
    std::uint64_t kills_hash = harness::hashU64(
        fault_seed,
        harness::hashString("fault_sweep/kills v1",
                            0xcbf29ce484222325ULL));
    for (std::uint32_t kills : kill_counts)
        kills_hash = harness::hashU64(kills, kills_hash);
    auto kill_reports = runner.mapReports(
        kill_counts.size(), kills_hash, [&](std::size_t i, sim::Rng &) {
            sim::FaultConfig faults;
            faults.seed = fault_seed;
            faults.killBanks = kill_counts[i];
            faults.transientRatePerOp = 1e-3;
            return runFaulted(faults);
        });

    harness::TablePrinter kills(
        {"killed banks", "units lost", "capacity left", "step (ms)",
         "faults", "retries", "degraded", "evicted"});
    for (std::size_t i = 0; i < kill_counts.size(); ++i) {
        const auto &report = kill_reports[i];
        kills.addRow({std::to_string(report.banksFailed),
                      std::to_string(report.unitsLost),
                      std::to_string(finalCapacity(report)),
                      fmt(report.stepSec * 1e3, 2),
                      std::to_string(report.transientFaults),
                      std::to_string(report.retries),
                      std::to_string(report.opsDegraded),
                      std::to_string(report.opsEvicted)});
    }
    kills.print(std::cout);

    harness::banner(std::cout,
                    "Resilience: transient/stall fault-rate sweep ("
                        + nn::modelName(kModel) + ")");

    struct RatePoint
    {
        double transient;
        double stall;
    };
    const std::vector<RatePoint> rates = {
        {0.0, 0.0},   {1e-4, 0.0},  {1e-3, 1e-4},
        {1e-2, 1e-3}, {0.05, 1e-2}, {1.0, 0.0},
    };
    std::uint64_t rates_hash = harness::hashU64(
        fault_seed,
        harness::hashString("fault_sweep/rates v1",
                            0xcbf29ce484222325ULL));
    for (const RatePoint &rate : rates) {
        rates_hash = harness::hashBytes(&rate.transient,
                                        sizeof rate.transient,
                                        rates_hash);
        rates_hash = harness::hashBytes(&rate.stall,
                                        sizeof rate.stall, rates_hash);
    }
    auto rate_reports =
        runner.mapReports(rates.size(), rates_hash,
                          [&](std::size_t i, sim::Rng &) {
            sim::FaultConfig faults;
            faults.seed = fault_seed;
            faults.transientRatePerOp = rates[i].transient;
            faults.stallRatePerOp = rates[i].stall;
            return runFaulted(faults);
        });

    harness::TablePrinter table(
        {"transient/op", "stall/op", "step (ms)", "faults", "stalls",
         "retries", "backoff (ms)", "degraded", "cpu ops"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const auto &report = rate_reports[i];
        std::uint64_t cpu_ops = 0;
        auto it = report.opsByPlacement.find(rt::PlacedOn::Cpu);
        if (it != report.opsByPlacement.end())
            cpu_ops = it->second;
        table.addRow({fmt(rates[i].transient, 4),
                      fmt(rates[i].stall, 4),
                      fmt(report.stepSec * 1e3, 2),
                      std::to_string(report.transientFaults),
                      std::to_string(report.kernelStalls),
                      std::to_string(report.retries),
                      fmt(report.retryBackoffSec * 1e3, 3),
                      std::to_string(report.opsDegraded),
                      std::to_string(cpu_ops)});
    }
    table.print(std::cout);
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
