/**
 * @file
 * User-workload sweep: run every `--graph FILE` workload (nn::GraphIo
 * JSON, docs/GRAPHS.md) across the non-GPU system configurations and
 * print the per-step breakdown. This is the `--graph` frontier's
 * dedicated bench: unlike the figure benches (where user graphs are
 * an appendix after the paper tables), graph_sweep runs *only* user
 * graphs -- with no `--graph` flag it prints the usage and exits
 * non-zero.
 *
 * Accepts every sweep-engine flag (parseSweepArgs): --jobs, --seed,
 * --journal, --shard i/N, --trace, --failpoints. The journal grid
 * hash folds each graph's structural signature, so resuming against
 * an edited graph file is a typed refusal, not silent reuse.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/graph_workloads.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;

    harness::SweepOptions options = harness::parseSweepArgs(argc, argv);
    if (options.graphFiles.empty()) {
        std::cerr << "graph_sweep: at least one --graph FILE is "
                     "required (nn::GraphIo JSON, docs/GRAPHS.md)\n";
        return 1;
    }
    auto user_graphs = harness::loadGraphWorkloads(options.graphFiles);
    harness::SweepRunner runner(std::move(options));

    harness::banner(std::cout,
                    "User-graph sweep: systems x graphs (per step)");
    harness::runGraphAppendix(std::cout, runner, user_graphs,
                              {SystemKind::CpuOnly,
                               SystemKind::ProgrPimOnly,
                               SystemKind::FixedPimOnly,
                               SystemKind::HeteroPim,
                               SystemKind::Neurocube});
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
