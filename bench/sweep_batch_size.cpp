/**
 * @file
 * Batch-size sensitivity sweep (an extension beyond the paper's
 * figures): where does the GPU-vs-Hetero crossover move as the batch
 * -- and with it the resident working set -- grows? The paper's
 * ResNet-50 result (Hetero wins at batch 128) is one point on this
 * curve; this bench draws the whole curve for ResNet-50 and VGG-19.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "gpu/gpu_model.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;
    using harness::fmtRatio;

    const std::vector<nn::ModelId> models = {nn::ModelId::ResNet50,
                                             nn::ModelId::Vgg19};
    const std::vector<int> batches = {8, 16, 32, 64, 128};

    // Two points per (model, batch): the GPU and the Hetero system.
    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    std::vector<harness::ExperimentPoint> points;
    for (auto model : models) {
        for (int batch : batches) {
            points.push_back({.kind = SystemKind::Gpu,
                              .model = model,
                              .steps = 3,
                              .batch = batch});
            points.push_back({.kind = SystemKind::HeteroPim,
                              .model = model,
                              .steps = 3,
                              .batch = batch});
        }
    }
    auto reports = runner.run(points);

    std::size_t index = 0;
    for (auto model : models) {
        harness::banner(std::cout,
                        "Batch sweep (" + nn::modelName(model)
                            + "): GPU vs Hetero PIM");
        harness::TablePrinter table(
            {"batch", "GPU ws (GB)", "GPU step (ms)",
             "Hetero step (ms)", "GPU/Hetero"});
        for (int batch : batches) {
            const auto &gpu_rep = reports[index++];
            const auto &het_rep = reports[index++];
            nn::Graph graph = nn::buildModel(model, batch);
            double ws = gpu::GpuModel::workingSetBytes(graph);
            table.addRow({std::to_string(batch), fmt(ws / 1e9, 2),
                          fmt(gpu_rep.stepSec * 1e3, 1),
                          fmt(het_rep.stepSec * 1e3, 1),
                          fmtRatio(gpu_rep.stepSec / het_rep.stepSec)});
        }
        table.print(std::cout);
    }
    std::cout << "(the ratio crosses 1.0 where the working set "
                 "outgrows the GPU's 11 GB device memory)\n";
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
