/**
 * @file
 * Batch-size sensitivity sweep (an extension beyond the paper's
 * figures): where does the GPU-vs-Hetero crossover move as the batch
 * -- and with it the resident working set -- grows? The paper's
 * ResNet-50 result (Hetero wins at batch 128) is one point on this
 * curve; this bench draws the whole curve for ResNet-50 and VGG-19.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "gpu/gpu_model.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

namespace {

using namespace hpim;

rt::ExecutionReport
heteroAt(const nn::Graph &graph)
{
    auto config = baseline::makeConfig(baseline::SystemKind::HeteroPim);
    config.steps = 3;
    rt::HeteroRuntime runtime(config);
    return runtime.train(graph).execution;
}

double
gpuAt(const nn::Graph &graph, nn::ModelId model, int batch)
{
    gpu::GpuModel gpu(baseline::gpuParams());
    double input = baseline::gpuInputBytes(model)
                   * double(batch)
                   / double(nn::defaultBatchSize(model));
    return gpu.runStep(graph, baseline::gpuUtilization(model), input)
        .totalSec();
}

} // namespace

int
main()
{
    using harness::fmt;
    using harness::fmtRatio;

    for (auto model : {nn::ModelId::ResNet50, nn::ModelId::Vgg19}) {
        harness::banner(std::cout,
                        "Batch sweep (" + nn::modelName(model)
                            + "): GPU vs Hetero PIM");
        harness::TablePrinter table(
            {"batch", "GPU ws (GB)", "GPU step (ms)",
             "Hetero step (ms)", "GPU/Hetero"});
        for (int batch : {8, 16, 32, 64, 128}) {
            nn::Graph graph = nn::buildModel(model, batch);
            double ws = gpu::GpuModel::workingSetBytes(graph);
            double gpu_t = gpuAt(graph, model, batch);
            double het_t = heteroAt(graph).stepSec;
            table.addRow({std::to_string(batch), fmt(ws / 1e9, 2),
                          fmt(gpu_t * 1e3, 1), fmt(het_t * 1e3, 1),
                          fmtRatio(gpu_t / het_t)});
        }
        table.print(std::cout);
    }
    std::cout << "(the ratio crosses 1.0 where the working set "
                 "outgrows the GPU's 11 GB device memory)\n";
    return 0;
}
