/**
 * @file
 * Paper Fig. 11: execution-time breakdown of Hetero PIM with the PIM
 * clocks at 1x, 2x and 4x (PLL scaling), against the GPU reference.
 * Expectations: at 2x Hetero beats the GPU by 36% (VGG-19) / 17%
 * (AlexNet); at 4x by 37% / 60%; synchronization and data-movement
 * overheads shrink with frequency.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main()
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;
    using harness::fmtRatio;

    harness::banner(std::cout,
                    "Fig. 11: Hetero PIM with 1x/2x/4x PIM frequency");

    harness::TablePrinter table(
        {"model", "freq", "step (ms)", "op (ms)", "data mv (ms)",
         "sync (ms)", "GPU/Hetero"});

    for (nn::ModelId model : nn::cnnModels()) {
        auto gpu = baseline::runSystem(SystemKind::Gpu, model);
        for (double scale : {1.0, 2.0, 4.0}) {
            auto rep = baseline::runSystem(SystemKind::HeteroPim, model,
                                           4, scale);
            table.addRow({nn::modelName(model),
                          fmt(scale, 0) + "x",
                          fmt(rep.stepSec * 1e3, 1),
                          fmt(rep.opSec * 1e3, 1),
                          fmt(rep.dataMovementSec * 1e3, 1),
                          fmt(rep.syncSec * 1e3, 1),
                          fmtRatio(gpu.stepSec / rep.stepSec)});
        }
    }
    table.print(std::cout);
    std::cout << "(paper: 2x -> +36%/+17% vs GPU for VGG-19/AlexNet; "
                 "4x -> +37%/+60%)\n";
    return 0;
}
