/**
 * @file
 * Paper Fig. 11: execution-time breakdown of Hetero PIM with the PIM
 * clocks at 1x, 2x and 4x (PLL scaling), against the GPU reference.
 * Expectations: at 2x Hetero beats the GPU by 36% (VGG-19) / 17%
 * (AlexNet); at 4x by 37% / 60%; synchronization and data-movement
 * overheads shrink with frequency.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;
    using harness::fmtRatio;

    harness::banner(std::cout,
                    "Fig. 11: Hetero PIM with 1x/2x/4x PIM frequency");

    harness::TablePrinter table(
        {"model", "freq", "step (ms)", "op (ms)", "data mv (ms)",
         "sync (ms)", "GPU/Hetero"});

    const std::vector<double> scales = {1.0, 2.0, 4.0};
    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    std::vector<harness::ExperimentPoint> points;
    for (nn::ModelId model : nn::cnnModels()) {
        points.push_back({.kind = SystemKind::Gpu, .model = model});
        for (double scale : scales) {
            points.push_back({.kind = SystemKind::HeteroPim,
                              .model = model,
                              .freqScale = scale});
        }
    }
    auto reports = runner.run(points);

    auto models = nn::cnnModels();
    const std::size_t stride = 1 + scales.size();
    for (std::size_t m = 0; m < models.size(); ++m) {
        nn::ModelId model = models[m];
        const auto &gpu = reports[m * stride];
        for (std::size_t s = 0; s < scales.size(); ++s) {
            double scale = scales[s];
            const auto &rep = reports[m * stride + 1 + s];
            table.addRow({nn::modelName(model),
                          fmt(scale, 0) + "x",
                          fmt(rep.stepSec * 1e3, 1),
                          fmt(rep.opSec * 1e3, 1),
                          fmt(rep.dataMovementSec * 1e3, 1),
                          fmt(rep.syncSec * 1e3, 1),
                          fmtRatio(gpu.stepSec / rep.stepSec)});
        }
    }
    table.print(std::cout);
    std::cout << "(paper: 2x -> +36%/+17% vs GPU for VGG-19/AlexNet; "
                 "4x -> +37%/+60%)\n";
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
