/**
 * @file
 * Paper Fig. 9: dynamic energy of the five NN models on the five
 * configurations, normalized to Hetero PIM. Paper expectations:
 * Hetero consumes 3-24x less than CPU and 1.3-5x less than GPU;
 * Progr PIM's dynamic energy is the highest of all configurations.
 */

#include <iostream>
#include <map>

#include "baseline/presets.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;
    using harness::fmtRatio;

    harness::banner(std::cout,
                    "Fig. 9: dynamic energy normalized to Hetero PIM");

    const std::vector<SystemKind> systems = {
        SystemKind::CpuOnly, SystemKind::Gpu, SystemKind::ProgrPimOnly,
        SystemKind::FixedPimOnly, SystemKind::HeteroPim};

    harness::TablePrinter table(
        {"model", "CPU [3-24x]", "GPU [1.3-5x]", "Progr PIM [highest]",
         "Fixed PIM", "Hetero PIM", "Hetero J/step"});

    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    std::vector<harness::ExperimentPoint> points;
    for (nn::ModelId model : nn::cnnModels()) {
        for (SystemKind kind : systems)
            points.push_back({.kind = kind, .model = model});
    }
    auto results = runner.run(points);

    std::size_t index = 0;
    for (nn::ModelId model : nn::cnnModels()) {
        std::map<SystemKind, rt::ExecutionReport> reports;
        for (SystemKind kind : systems)
            reports[kind] = results[index++];
        double hetero = reports[SystemKind::HeteroPim].energyPerStepJ;
        table.addRow(
            {nn::modelName(model),
             fmtRatio(reports[SystemKind::CpuOnly].energyPerStepJ
                      / hetero),
             fmtRatio(reports[SystemKind::Gpu].energyPerStepJ / hetero),
             fmtRatio(reports[SystemKind::ProgrPimOnly].energyPerStepJ
                      / hetero),
             fmtRatio(reports[SystemKind::FixedPimOnly].energyPerStepJ
                      / hetero),
             "1.00x", fmt(hetero, 2)});
    }
    table.print(std::cout);
    harness::printSweepSummary(std::cout, runner.stats());
    return 0;
}
