/**
 * @file
 * hpim_merge -- fuse the shard journals of a distributed sweep back
 * into one unsharded journal (docs/SWEEP_ENGINE.md, "Sharded
 * distributed sweeps").
 *
 * Usage:
 *   hpim_merge DIR [--out DIR]
 *
 * DIR is the journal directory N `--shard i/N` processes shared.
 * Every segment is validated -- shard headers must agree on schema,
 * seed, grid hash and point count; every grid point must be recorded
 * exactly once (identical duplicates tolerated, conflicts and gaps
 * fatal, a dead shard's journal may be absent if its slice was
 * stolen); leftover claim files must be complete stale records, not
 * torn writes -- and a
 * one-line summary per segment is printed. With `--out` the merged
 * segments are written as a normal unsharded journal: resuming the
 * original bench from that directory replays every point and prints
 * the byte-identical single-process table.
 *
 * Exit status: 0 on a complete, consistent merge; 1 with a one-line
 * diagnostic naming the offending shard file otherwise.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/failpoint.hh"
#include "harness/shard_merge.hh"
#include "sim/logging.hh"

namespace {

const char *const kUsage =
    "usage: hpim_merge DIR [--out DIR] [--failpoints SPEC]\n"
    "  DIR        journal directory shared by the --shard processes\n"
    "  --out DIR  write the merged unsharded journal here (resume a\n"
    "             bench from it to reproduce the full table)\n"
    "  --failpoints SPEC  arm host-IO fail points "
    "(docs/RESILIENCE.md)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace hpim;

    std::string journal_dir;
    std::string out_dir;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out") {
            fatal_if(i + 1 >= argc, "--out needs a "
                              "directory\n", kUsage);
            out_dir = argv[++i];
        } else if (arg.rfind("--out=", 0) == 0) {
            out_dir = arg.substr(6);
        } else if (arg == "--failpoints") {
            fatal_if(i + 1 >= argc, "--failpoints needs a spec\n",
                     kUsage);
            try {
                harness::configureFailPoints(argv[++i]);
            } catch (const harness::FailPointError &e) {
                fatal(e.what(), "\n", kUsage);
            }
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown argument '", arg, "'\n", kUsage);
        } else if (journal_dir.empty()) {
            journal_dir = arg;
        } else {
            fatal("more than one journal directory given\n",
                           kUsage);
        }
    }
    if (journal_dir.empty())
        fatal("no journal directory given\n", kUsage);
    harness::configureFailPointsFromEnv();

    std::vector<harness::SegmentMerge> merged;
    try {
        merged = harness::mergeShardJournals(journal_dir);
        if (!out_dir.empty())
            harness::writeMergedJournal(out_dir, merged);
    } catch (const harness::ShardMergeError &e) {
        fatal(e.what());
    } catch (const harness::JournalFormatError &e) {
        fatal(e.what());
    } catch (const harness::IoError &e) {
        fatal(e.what());
    }

    for (const harness::SegmentMerge &segment : merged) {
        std::cout << "[merge] segment " << segment.segment << ": "
                  << segment.records.size() << " points, seed "
                  << segment.header.baseSeed << ", grid hash "
                  << segment.header.gridHash << "\n";
    }
    if (!out_dir.empty()) {
        std::cout << "[merge] wrote " << merged.size()
                  << (merged.size() == 1 ? " segment" : " segments")
                  << " to '" << out_dir << "'\n";
    }
    return 0;
}
