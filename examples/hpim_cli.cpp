/**
 * @file
 * hpim_cli -- argument-driven simulation runner.
 *
 * Usage:
 *   hpim_cli [--model NAME | --graph FILE] [--system NAME] [--steps N]
 *            [--freq-scale F] [--progr-pims N] [--no-rc] [--no-op]
 *            [--fault-rate R] [--kill-banks N] [--fault-seed S]
 *            [--timeout-ms MS] [--connect SOCK] [--no-metrics]
 *            [--csv] [--json] [--summary] [--dot] [--trace FILE]
 *            [--dump-graph FILE] [--dry-run]
 *            [--list-models] [--list-graph-ops]
 *
 * --graph FILE runs a user workload: a versioned JSON graph document
 * (docs/GRAPHS.md) built with nn::Builder / nn::GraphIo instead of a
 * built-in --model. Parse/validation failures exit 1 with a typed
 * "graph parse error" naming the offending field and line -- never a
 * crash. --dump-graph FILE serializes the selected workload (either
 * form) back to a graph document; with --model that is how built-ins
 * are exported. --dry-run stops after loading/validating (and any
 * --summary/--dot/--dump-graph output) without simulating.
 *
 * --trace FILE writes a Chrome/Perfetto timeline of the run
 * (docs/OBSERVABILITY.md). A MetricsRegistry is attached for every
 * local run unless --no-metrics, so --json reports carry the
 * component metrics snapshot. Note the memo-cache interaction: an
 * attached registry suspends sim::MemoCache, so --no-metrics is also
 * how a local run exercises the memo path.
 *
 * --timeout-ms MS bounds the run: once the budget is spent the
 * simulation unwinds at its next phase boundary (docs/SERVING.md,
 * "Deadlines") and hpim_cli exits with code 124 (the coreutils
 * timeout(1) convention).
 *
 * --connect SOCK runs the simulation on an hpim_serve daemon instead
 * of in-process: the same flags are sent over the wire, the response
 * is printed exactly as a local run would print it (a served --json
 * report is byte-identical to `hpim_cli --json --no-metrics`), and
 * typed rejections map to exit codes -- 124 for deadline_exceeded,
 * 75 (EX_TEMPFAIL, retryable) for overloaded/shutting_down.
 *
 * Models : vgg19 alexnet dcgan resnet50 inception3 lstm word2vec
 * Systems: cpu gpu progr fixed hetero neurocube
 *
 * --fault-rate/--kill-banks arm the resilience layer
 * (docs/RESILIENCE.md): transient per-op fault rate R and N
 * fixed-function banks killed mid-run, schedule drawn from
 * --fault-seed. Not available with --system gpu (the analytic GPU
 * model has no fault layer).
 *
 * Examples:
 *   hpim_cli --model resnet50 --system hetero --steps 8 --json
 *   hpim_cli --model vgg19 --system hetero --freq-scale 4 --csv
 *   hpim_cli --model alexnet --kill-banks 8 --fault-rate 0.001
 *   hpim_cli --connect /tmp/hpim.sock --model alexnet --json
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <optional>
#include <string>

#include "harness/failpoint.hh"
#include "harness/report_io.hh"
#include "harness/table_printer.hh"
#include "harness/thread_pool.hh"
#include "nn/graph_io.hh"
#include "nn/models.hh"
#include "nn/summary.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/client.hh"
#include "serve/simulate.hh"
#include "sim/config.hh"
#include "sim/deadline.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace {

using namespace hpim;

/** Exit code for a spent --timeout-ms budget (timeout(1) style). */
constexpr int kDeadlineExitCode = 124;

const char *const kUsage =
    "usage: hpim_cli [--model NAME | --graph FILE] [--system NAME]\n"
    "  [--steps N] [--freq-scale F] [--progr-pims N]\n"
    "  [--no-rc] [--no-op] [--fault-rate R]\n"
    "  [--kill-banks N] [--fault-seed S]\n"
    "  [--timeout-ms MS] [--connect SOCK] [--no-metrics]\n"
    "  [--csv] [--json] [--summary] [--dot] [--trace FILE]\n"
    "  [--dump-graph FILE] [--dry-run]\n"
    "  [--list-models]      print the built-in model tokens\n"
    "  [--list-graph-ops]   print the graph-document op types\n"
    "  [--failpoints SPEC]  arm deterministic host-IO fault\n"
    "                       injection (docs/RESILIENCE.md)";

/** strtoull with full-consumption checking: '12x' and '-3' fail. */
std::uint64_t
parseU64(const std::string &flag, const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()
        || text[0] == '-' || errno == ERANGE)
        fatal(flag, " expects an unsigned integer, got '", text,
              "'\n", kUsage);
    return value;
}

double
parseDouble(const std::string &flag, const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size())
        fatal(flag, " expects a number, got '", text, "'\n", kUsage);
    return value;
}

/**
 * What a valid hpim_cli invocation looks like: every flag's type and
 * range. An out-of-range value or (via allowUnknown=false) any key a
 * typo smuggled into the store fails fast with the full list of
 * violations instead of silently simulating nonsense.
 */
sim::ConfigSchema
cliSchema()
{
    using sim::ConfigType;
    sim::ConfigSchema schema;
    schema.keys = {
        {"model", ConfigType::String, true, 0.0, 0.0},
        {"graph", ConfigType::String, true, 0.0, 0.0},
        {"dump_graph", ConfigType::String, true, 0.0, 0.0},
        {"dry_run", ConfigType::Bool, true, 0.0, 0.0},
        {"system", ConfigType::String, true, 0.0, 0.0},
        {"steps", ConfigType::Int, true, 1.0, 1e6},
        {"freq_scale", ConfigType::Double, true, 1.0 / 64, 128.0},
        {"progr_pims", ConfigType::Int, true, 1.0, 256.0},
        {"rc", ConfigType::Bool, true, 0.0, 0.0},
        {"op", ConfigType::Bool, true, 0.0, 0.0},
        {"fault_rate", ConfigType::Double, true, 0.0, 1.0},
        {"kill_banks", ConfigType::Int, true, 0.0, 4096.0},
        {"timeout_ms", ConfigType::Double, true, 0.0, 1e9},
        {"connect", ConfigType::String, true, 0.0, 0.0},
        {"metrics", ConfigType::Bool, true, 0.0, 0.0},
        {"csv", ConfigType::Bool, true, 0.0, 0.0},
        {"json", ConfigType::Bool, true, 0.0, 0.0},
        {"summary", ConfigType::Bool, true, 0.0, 0.0},
        {"dot", ConfigType::Bool, true, 0.0, 0.0},
        {"trace", ConfigType::String, true, 0.0, 0.0},
        {"failpoints", ConfigType::String, true, 0.0, 0.0},
    };
    return schema;
}

/** Print the built-in model tokens, one per line. */
void
listModels()
{
    for (nn::ModelId model : nn::allModels()) {
        std::cout << serve::modelToken(model) << "  "
                  << nn::modelName(model) << " (default batch "
                  << nn::defaultBatchSize(model) << ")\n";
    }
}

/** Print every graph-document op type with its offload class. */
void
listGraphOps()
{
    auto className = [](nn::OffloadClass cls) {
        switch (cls) {
          case nn::OffloadClass::FixedFunction: return "fixed-function";
          case nn::OffloadClass::Recursive: return "recursive";
          case nn::OffloadClass::ProgrammableOnly:
            return "programmable-only";
          case nn::OffloadClass::DataMovement: return "data-movement";
        }
        return "unknown";
    };
    for (std::size_t i = 0; i < nn::numOpTypes; ++i) {
        auto type = static_cast<nn::OpType>(i);
        std::cout << nn::opName(type) << "  "
                  << className(nn::opTraits(type).offloadClass)
                  << "\n";
    }
}

/** Print @p report the way the chosen output flags ask for. */
void
emitReport(const rt::ExecutionReport &report, bool csv, bool json,
           bool faults)
{
    try {
        if (csv) {
            harness::writeCsv(std::cout, {report});
            return;
        }
        if (json) {
            harness::writeJson(std::cout, report);
            std::cout << '\n';
            return;
        }
    } catch (const harness::IoError &e) {
        // The simulation finished; only the output write failed.
        fatal("cannot emit report: ", e.what());
    }
    std::vector<std::string> headers = {
        "config", "workload", "step (ms)", "op", "data mv",
        "sync", "J/step", "avg W", "fixed util"};
    std::vector<std::string> row = {
        report.configName, report.workloadName,
        harness::fmt(report.stepSec * 1e3, 2),
        harness::fmt(report.opSec * 1e3, 2),
        harness::fmt(report.dataMovementSec * 1e3, 2),
        harness::fmt(report.syncSec * 1e3, 2),
        harness::fmt(report.energyPerStepJ, 2),
        harness::fmt(report.averagePowerW, 1),
        harness::fmtPct(report.fixedUtilization * 100.0)};
    if (faults) {
        headers.insert(headers.end(),
                       {"faults", "retries", "degraded",
                        "banks lost"});
        row.insert(row.end(),
                   {std::to_string(report.transientFaults),
                    std::to_string(report.retries),
                    std::to_string(report.opsDegraded),
                    std::to_string(report.banksFailed)});
    }
    harness::TablePrinter table(headers);
    table.addRow(row);
    table.print(std::cout);
}

/** Run @p spec on the daemon at @p socket; returns the exit code. */
int
runConnected(const std::string &socket,
             const serve::SimulateSpec &spec, double timeout_ms,
             bool csv, bool json, bool faults)
{
    serve::ClientOptions options;
    options.socketPath = socket;
    // The daemon enforces the deadline; the local socket timeout
    // only guards against a wedged daemon, so leave it generous.
    if (timeout_ms > 0.0)
        options.ioTimeoutMs = timeout_ms + 10'000.0;

    serve::Request request;
    request.id = 1;
    request.kind = serve::RequestKind::Simulate;
    request.deadlineMs = timeout_ms;
    request.sim = spec;

    serve::Client client(options);
    serve::Response response;
    try {
        response = client.call(request);
    } catch (const serve::ProtocolError &e) {
        std::cerr << "hpim_cli: " << e.what() << '\n';
        return 1;
    }

    if (!response.ok) {
        std::cerr << "hpim_cli: daemon rejected the request: "
                  << serve::errorCodeName(response.code) << ": "
                  << response.message << '\n';
        switch (response.code) {
          case serve::ErrorCode::DeadlineExceeded:
            return kDeadlineExitCode;
          case serve::ErrorCode::Overloaded:
          case serve::ErrorCode::ShuttingDown:
            return harness::resumableExitCode; // retryable
          default:
            return 1;
        }
    }
    if (!response.hasReport) {
        std::cerr << "hpim_cli: daemon sent a " << response.kind
                  << " response to a simulate request\n";
        return 1;
    }
    emitReport(response.report, csv, json, faults);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Flags accumulate into a typed config and are validated against
    // cliSchema() in one pass before anything simulates.
    sim::Config cli;
    cli.set("model", "alexnet");
    cli.set("graph", "");      // empty = run the built-in model
    cli.set("dump_graph", ""); // empty = no graph export
    cli.set("dry_run", false);
    cli.set("system", "hetero");
    cli.set("steps", 4);
    cli.set("freq_scale", 1.0);
    cli.set("progr_pims", 1);
    cli.set("rc", true);
    cli.set("op", true);
    cli.set("fault_rate", 0.0);
    cli.set("kill_banks", 0);
    cli.set("timeout_ms", 0.0); // 0 = no deadline
    cli.set("connect", "");     // empty = run in-process
    cli.set("metrics", true);
    cli.set("csv", false);
    cli.set("json", false);
    cli.set("summary", false);
    cli.set("dot", false);
    cli.set("trace", "");      // empty = tracing off
    cli.set("failpoints", ""); // empty = no host-IO fault injection
    std::uint64_t fault_seed = hpim::sim::defaultSeed;
    bool model_flag_set = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for ", arg, "\n",
                     kUsage);
            return argv[++i];
        };
        if (arg == "--model") {
            cli.set("model", next());
            model_flag_set = true;
        }
        else if (arg == "--graph") cli.set("graph", next());
        else if (arg == "--dump-graph") cli.set("dump_graph", next());
        else if (arg == "--dry-run") cli.set("dry_run", true);
        else if (arg == "--list-models") { listModels(); return 0; }
        else if (arg == "--list-graph-ops") {
            listGraphOps();
            return 0;
        }
        else if (arg == "--system") cli.set("system", next());
        else if (arg == "--steps")
            cli.set("steps", static_cast<std::int64_t>(
                                 parseU64(arg, next())));
        else if (arg == "--freq-scale")
            cli.set("freq_scale", parseDouble(arg, next()));
        else if (arg == "--progr-pims")
            cli.set("progr_pims", static_cast<std::int64_t>(
                                      parseU64(arg, next())));
        else if (arg == "--no-rc") cli.set("rc", false);
        else if (arg == "--no-op") cli.set("op", false);
        else if (arg == "--fault-rate")
            cli.set("fault_rate", parseDouble(arg, next()));
        else if (arg == "--kill-banks")
            cli.set("kill_banks", static_cast<std::int64_t>(
                                      parseU64(arg, next())));
        else if (arg == "--fault-seed")
            fault_seed = parseU64(arg, next());
        else if (arg == "--timeout-ms")
            cli.set("timeout_ms", parseDouble(arg, next()));
        else if (arg == "--connect") cli.set("connect", next());
        else if (arg == "--no-metrics") cli.set("metrics", false);
        else if (arg == "--csv") cli.set("csv", true);
        else if (arg == "--json") cli.set("json", true);
        else if (arg == "--summary") cli.set("summary", true);
        else if (arg == "--dot") cli.set("dot", true);
        else if (arg == "--trace") cli.set("trace", next());
        else if (arg == "--failpoints")
            cli.set("failpoints", next());
        else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage << '\n';
            return 0;
        } else {
            fatal("unknown argument '", arg, "' (try --help)\n",
                  kUsage);
        }
    }
    cli.validateOrDie(cliSchema());

    harness::configureFailPointsFromEnv();
    if (!cli.requireString("failpoints").empty()) {
        try {
            harness::configureFailPoints(
                cli.requireString("failpoints"));
        } catch (const harness::FailPointError &e) {
            fatal("--failpoints: ", e.what(), "\n", kUsage);
        }
    }

    serve::SimulateSpec spec;
    spec.model = cli.requireString("model");
    std::string graph_file = cli.requireString("graph");
    std::string dump_graph = cli.requireString("dump_graph");
    bool dry_run = cli.requireBool("dry_run");
    spec.system = cli.requireString("system");
    spec.steps =
        static_cast<std::uint32_t>(cli.requireInt("steps"));
    spec.freqScale = cli.requireDouble("freq_scale");
    spec.progrPims =
        static_cast<std::uint32_t>(cli.requireInt("progr_pims"));
    spec.rc = cli.requireBool("rc");
    spec.op = cli.requireBool("op");
    spec.faultRate = cli.requireDouble("fault_rate");
    spec.killBanks =
        static_cast<std::uint32_t>(cli.requireInt("kill_banks"));
    spec.faultSeed = fault_seed;

    double timeout_ms = cli.requireDouble("timeout_ms");
    std::string connect = cli.requireString("connect");
    bool with_metrics = cli.requireBool("metrics");
    bool csv = cli.requireBool("csv"), json = cli.requireBool("json");
    bool summary = cli.requireBool("summary");
    bool dot = cli.requireBool("dot");
    std::string trace_file = cli.requireString("trace");

    // Token validation up front (the same tables serve the daemon's
    // wire validation, so CLI and wire agree on the name space).
    fatal_if(!graph_file.empty() && model_flag_set,
             "--graph and --model are mutually exclusive; a graph "
             "document is a complete workload\n", kUsage);
    std::optional<nn::ModelId> model = serve::modelFromToken(spec.model);
    fatal_if(graph_file.empty() && !model, "unknown model '",
             spec.model, "' (", serve::modelTokenList(),
             "; or --graph FILE, see --list-models)\n", kUsage);
    fatal_if(!serve::systemFromToken(spec.system),
             "unknown system '", spec.system, "' (",
             serve::systemTokenList(), ")\n", kUsage);
    fatal_if(!graph_file.empty() && spec.system == "gpu",
             "the analytic GPU model needs per-model calibration and "
             "cannot run --graph workloads");

    bool faults = spec.faultRate > 0.0 || spec.killBanks > 0;
    fatal_if(faults && spec.system == "gpu",
             "--fault-rate/--kill-banks need a simulated system; the "
             "analytic GPU model has no fault layer");

    // Resolve the workload: a loaded user document or a built-in
    // model. User-file problems are typed errors with a clean exit,
    // never an abort -- the file is input, not program state.
    std::optional<nn::Graph> user_graph;
    if (!graph_file.empty()) {
        std::ifstream in(graph_file, std::ios::binary);
        if (!in) {
            std::cerr << "hpim_cli: graph parse error: cannot open "
                         "graph file '" << graph_file << "'\n";
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        spec.graph = text.str();
        try {
            user_graph = nn::loadGraph(spec.graph);
        } catch (const nn::GraphParseError &e) {
            std::cerr << "hpim_cli: " << e.what() << " in '"
                      << graph_file << "'\n";
            return 1;
        }
    }

    if (summary || dot || !dump_graph.empty()) {
        nn::Graph graph = user_graph
                              ? *user_graph
                              : nn::buildModel(*model);
        if (summary)
            nn::summarize(graph).print(std::cout);
        if (dot)
            nn::exportDot(graph, std::cout);
        if (!dump_graph.empty()) {
            try {
                nn::saveGraphFile(dump_graph, graph);
            } catch (const nn::GraphParseError &e) {
                std::cerr << "hpim_cli: " << e.what() << '\n';
                return 1;
            }
        }
        if (dot && !csv && !json && !summary && !dry_run)
            return 0;
    }
    if (dry_run)
        return 0;

    if (!connect.empty()) {
        // Thin-client mode: the daemon owns metrics and tracing.
        fatal_if(!trace_file.empty(),
                 "--trace traces a local run; start hpim_serve with "
                 "--trace to trace served requests");
        return runConnected(connect, spec, timeout_ms, csv, json,
                            faults);
    }

    // A single deterministic run, so unlike sweeps the registry
    // snapshot can go straight into the report (and the --json
    // output) without breaking any determinism contract. Skipped
    // with --no-metrics, which matches what a served request reports
    // (the daemon never attaches a registry to simulations).
    obs::MetricsRegistry metrics;
    if (with_metrics)
        metrics.attach();
    obs::TraceSession trace;
    if (!trace_file.empty())
        trace.attach();

    rt::ExecutionReport report;
    try {
        std::optional<sim::DeadlineScope> scope;
        if (timeout_ms > 0.0)
            scope.emplace(sim::Deadline::afterMs(timeout_ms));
        report = serve::runSimulate(spec);
    } catch (const sim::DeadlineExceeded &e) {
        std::cerr << "hpim_cli: " << e.what() << '\n';
        return kDeadlineExitCode;
    }
    if (with_metrics)
        report.metrics = metrics.snapshot();

    emitReport(report, csv, json, faults);

    if (!trace_file.empty()) {
        trace.detach();
        // The report is already emitted; a lost trace artifact
        // warns on stderr but never fails the run.
        try {
            trace.exportChromeTrace(trace_file);
            // stderr so --csv/--json stdout stays clean for
            // pipelines.
            std::cerr << "[trace] wrote " << trace_file << " ("
                      << trace.eventCount() << " events)\n";
        } catch (const obs::TraceExportError &e) {
            std::cerr << "[trace] export of " << trace_file
                      << " failed: " << e.what() << '\n';
        }
    }
    return 0;
}
