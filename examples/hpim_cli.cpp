/**
 * @file
 * hpim_cli -- argument-driven simulation runner.
 *
 * Usage:
 *   hpim_cli [--model NAME] [--system NAME] [--steps N]
 *            [--freq-scale F] [--progr-pims N] [--no-rc] [--no-op]
 *            [--fault-rate R] [--kill-banks N] [--fault-seed S]
 *            [--csv] [--json] [--summary] [--dot] [--trace FILE]
 *
 * --trace FILE writes a Chrome/Perfetto timeline of the run
 * (docs/OBSERVABILITY.md). A MetricsRegistry is attached for every
 * run, so --json reports carry the component metrics snapshot.
 *
 * Models : vgg19 alexnet dcgan resnet50 inception3 lstm word2vec
 * Systems: cpu gpu progr fixed hetero neurocube
 *
 * --fault-rate/--kill-banks arm the resilience layer
 * (docs/RESILIENCE.md): transient per-op fault rate R and N
 * fixed-function banks killed mid-run, schedule drawn from
 * --fault-seed. Not available with --system gpu (the analytic GPU
 * model has no fault layer).
 *
 * Examples:
 *   hpim_cli --model resnet50 --system hetero --steps 8 --json
 *   hpim_cli --model vgg19 --system hetero --freq-scale 4 --csv
 *   hpim_cli --model alexnet --kill-banks 8 --fault-rate 0.001
 *   hpim_cli --model alexnet --summary --dot > alexnet.dot
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "baseline/presets.hh"
#include "harness/report_io.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "nn/summary.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "rt/hetero_runtime.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace {

using namespace hpim;

const char *const kUsage =
    "usage: hpim_cli [--model NAME] [--system NAME]\n"
    "  [--steps N] [--freq-scale F] [--progr-pims N]\n"
    "  [--no-rc] [--no-op] [--fault-rate R]\n"
    "  [--kill-banks N] [--fault-seed S] [--csv]\n"
    "  [--json] [--summary] [--dot] [--trace FILE]";

nn::ModelId
parseModel(const std::string &name)
{
    if (name == "vgg19") return nn::ModelId::Vgg19;
    if (name == "alexnet") return nn::ModelId::AlexNet;
    if (name == "dcgan") return nn::ModelId::Dcgan;
    if (name == "resnet50") return nn::ModelId::ResNet50;
    if (name == "inception3") return nn::ModelId::InceptionV3;
    if (name == "lstm") return nn::ModelId::Lstm;
    if (name == "word2vec") return nn::ModelId::Word2vec;
    fatal("unknown model '", name,
          "' (vgg19 alexnet dcgan resnet50 inception3 lstm "
          "word2vec)\n",
          kUsage);
}

baseline::SystemKind
parseSystem(const std::string &name)
{
    if (name == "cpu") return baseline::SystemKind::CpuOnly;
    if (name == "gpu") return baseline::SystemKind::Gpu;
    if (name == "progr") return baseline::SystemKind::ProgrPimOnly;
    if (name == "fixed") return baseline::SystemKind::FixedPimOnly;
    if (name == "hetero") return baseline::SystemKind::HeteroPim;
    if (name == "neurocube") return baseline::SystemKind::Neurocube;
    fatal("unknown system '", name,
          "' (cpu gpu progr fixed hetero neurocube)\n", kUsage);
}

/** strtoull with full-consumption checking: '12x' and '-3' fail. */
std::uint64_t
parseU64(const std::string &flag, const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()
        || text[0] == '-' || errno == ERANGE)
        fatal(flag, " expects an unsigned integer, got '", text,
              "'\n", kUsage);
    return value;
}

double
parseDouble(const std::string &flag, const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size())
        fatal(flag, " expects a number, got '", text, "'\n", kUsage);
    return value;
}

/**
 * What a valid hpim_cli invocation looks like: every flag's type and
 * range. An out-of-range value or (via allowUnknown=false) any key a
 * typo smuggled into the store fails fast with the full list of
 * violations instead of silently simulating nonsense.
 */
sim::ConfigSchema
cliSchema()
{
    using sim::ConfigType;
    sim::ConfigSchema schema;
    schema.keys = {
        {"model", ConfigType::String, true, 0.0, 0.0},
        {"system", ConfigType::String, true, 0.0, 0.0},
        {"steps", ConfigType::Int, true, 1.0, 1e6},
        {"freq_scale", ConfigType::Double, true, 1.0 / 64, 128.0},
        {"progr_pims", ConfigType::Int, true, 1.0, 256.0},
        {"rc", ConfigType::Bool, true, 0.0, 0.0},
        {"op", ConfigType::Bool, true, 0.0, 0.0},
        {"fault_rate", ConfigType::Double, true, 0.0, 1.0},
        {"kill_banks", ConfigType::Int, true, 0.0, 4096.0},
        {"csv", ConfigType::Bool, true, 0.0, 0.0},
        {"json", ConfigType::Bool, true, 0.0, 0.0},
        {"summary", ConfigType::Bool, true, 0.0, 0.0},
        {"dot", ConfigType::Bool, true, 0.0, 0.0},
        {"trace", ConfigType::String, true, 0.0, 0.0},
    };
    return schema;
}

} // namespace

int
main(int argc, char **argv)
{
    // Flags accumulate into a typed config and are validated against
    // cliSchema() in one pass before anything simulates.
    sim::Config cli;
    cli.set("model", "alexnet");
    cli.set("system", "hetero");
    cli.set("steps", 4);
    cli.set("freq_scale", 1.0);
    cli.set("progr_pims", 1);
    cli.set("rc", true);
    cli.set("op", true);
    cli.set("fault_rate", 0.0);
    cli.set("kill_banks", 0);
    cli.set("csv", false);
    cli.set("json", false);
    cli.set("summary", false);
    cli.set("dot", false);
    cli.set("trace", ""); // empty = tracing off
    std::uint64_t fault_seed = hpim::sim::defaultSeed;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for ", arg, "\n",
                     kUsage);
            return argv[++i];
        };
        if (arg == "--model") cli.set("model", next());
        else if (arg == "--system") cli.set("system", next());
        else if (arg == "--steps")
            cli.set("steps", static_cast<std::int64_t>(
                                 parseU64(arg, next())));
        else if (arg == "--freq-scale")
            cli.set("freq_scale", parseDouble(arg, next()));
        else if (arg == "--progr-pims")
            cli.set("progr_pims", static_cast<std::int64_t>(
                                      parseU64(arg, next())));
        else if (arg == "--no-rc") cli.set("rc", false);
        else if (arg == "--no-op") cli.set("op", false);
        else if (arg == "--fault-rate")
            cli.set("fault_rate", parseDouble(arg, next()));
        else if (arg == "--kill-banks")
            cli.set("kill_banks", static_cast<std::int64_t>(
                                      parseU64(arg, next())));
        else if (arg == "--fault-seed")
            fault_seed = parseU64(arg, next());
        else if (arg == "--csv") cli.set("csv", true);
        else if (arg == "--json") cli.set("json", true);
        else if (arg == "--summary") cli.set("summary", true);
        else if (arg == "--dot") cli.set("dot", true);
        else if (arg == "--trace") cli.set("trace", next());
        else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage << '\n';
            return 0;
        } else {
            fatal("unknown argument '", arg, "' (try --help)\n",
                  kUsage);
        }
    }
    cli.validateOrDie(cliSchema());

    nn::ModelId model = parseModel(cli.requireString("model"));
    baseline::SystemKind system =
        parseSystem(cli.requireString("system"));
    std::uint32_t steps =
        static_cast<std::uint32_t>(cli.requireInt("steps"));
    double freq_scale = cli.requireDouble("freq_scale");
    std::uint32_t progr_pims =
        static_cast<std::uint32_t>(cli.requireInt("progr_pims"));
    bool rc = cli.requireBool("rc"), op = cli.requireBool("op");
    bool csv = cli.requireBool("csv"), json = cli.requireBool("json");
    bool summary = cli.requireBool("summary");
    bool dot = cli.requireBool("dot");
    double fault_rate = cli.requireDouble("fault_rate");
    std::uint32_t kill_banks =
        static_cast<std::uint32_t>(cli.requireInt("kill_banks"));
    std::string trace_file = cli.requireString("trace");

    // A single deterministic run, so unlike sweeps the registry
    // snapshot can go straight into the report (and the --json
    // output) without breaking any determinism contract.
    obs::MetricsRegistry metrics;
    metrics.attach();
    obs::TraceSession trace;
    if (!trace_file.empty())
        trace.attach();

    nn::Graph graph = nn::buildModel(model);

    if (summary)
        nn::summarize(graph).print(std::cout);
    if (dot) {
        nn::exportDot(graph, std::cout);
        if (!csv && !json && !summary)
            return 0;
    }

    bool faults = fault_rate > 0.0 || kill_banks > 0;
    fatal_if(faults && system == baseline::SystemKind::Gpu,
             "--fault-rate/--kill-banks need a simulated system; the "
             "analytic GPU model has no fault layer");

    rt::ExecutionReport report;
    if (system == baseline::SystemKind::Gpu) {
        report = baseline::runSystem(system, model, steps);
    } else if (faults
               || (system == baseline::SystemKind::HeteroPim
                   && (!rc || !op))) {
        auto config =
            system == baseline::SystemKind::HeteroPim
                ? baseline::makeHetero(true, rc, op, freq_scale,
                                       progr_pims)
                : baseline::makeConfig(system, freq_scale, progr_pims);
        config.steps = steps;
        if (faults) {
            config.faults.enabled = true;
            config.faults.transientRatePerOp = fault_rate;
            config.faults.killBanks = kill_banks;
            config.faults.seed = fault_seed;
        }
        rt::HeteroRuntime runtime(config);
        report = runtime.train(graph).execution;
    } else {
        report = baseline::runSystem(system, model, steps, freq_scale,
                                     progr_pims);
    }
    report.metrics = metrics.snapshot();

    if (csv) {
        harness::writeCsv(std::cout, {report});
    } else if (json) {
        harness::writeJson(std::cout, report);
        std::cout << '\n';
    } else {
        std::vector<std::string> headers = {
            "config", "workload", "step (ms)", "op", "data mv",
            "sync", "J/step", "avg W", "fixed util"};
        std::vector<std::string> row = {
            report.configName, report.workloadName,
            harness::fmt(report.stepSec * 1e3, 2),
            harness::fmt(report.opSec * 1e3, 2),
            harness::fmt(report.dataMovementSec * 1e3, 2),
            harness::fmt(report.syncSec * 1e3, 2),
            harness::fmt(report.energyPerStepJ, 2),
            harness::fmt(report.averagePowerW, 1),
            harness::fmtPct(report.fixedUtilization * 100.0)};
        if (faults) {
            headers.insert(headers.end(),
                           {"faults", "retries", "degraded",
                            "banks lost"});
            row.insert(row.end(),
                       {std::to_string(report.transientFaults),
                        std::to_string(report.retries),
                        std::to_string(report.opsDegraded),
                        std::to_string(report.banksFailed)});
        }
        harness::TablePrinter table(headers);
        table.addRow(row);
        table.print(std::cout);
    }

    if (!trace_file.empty()) {
        trace.detach();
        trace.exportChromeTrace(trace_file);
        // stderr so --csv/--json stdout stays clean for pipelines.
        std::cerr << "[trace] wrote " << trace_file << " ("
                  << trace.eventCount() << " events)\n";
    }
    return 0;
}
