/**
 * @file
 * hpim_cli -- argument-driven simulation runner.
 *
 * Usage:
 *   hpim_cli [--model NAME] [--system NAME] [--steps N]
 *            [--freq-scale F] [--progr-pims N] [--no-rc] [--no-op]
 *            [--fault-rate R] [--kill-banks N] [--fault-seed S]
 *            [--csv] [--json] [--summary] [--dot]
 *
 * Models : vgg19 alexnet dcgan resnet50 inception3 lstm word2vec
 * Systems: cpu gpu progr fixed hetero neurocube
 *
 * --fault-rate/--kill-banks arm the resilience layer
 * (docs/RESILIENCE.md): transient per-op fault rate R and N
 * fixed-function banks killed mid-run, schedule drawn from
 * --fault-seed. Not available with --system gpu (the analytic GPU
 * model has no fault layer).
 *
 * Examples:
 *   hpim_cli --model resnet50 --system hetero --steps 8 --json
 *   hpim_cli --model vgg19 --system hetero --freq-scale 4 --csv
 *   hpim_cli --model alexnet --kill-banks 8 --fault-rate 0.001
 *   hpim_cli --model alexnet --summary --dot > alexnet.dot
 */

#include <cstring>
#include <iostream>
#include <string>

#include "baseline/presets.hh"
#include "harness/report_io.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "nn/summary.hh"
#include "rt/hetero_runtime.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace {

using namespace hpim;

nn::ModelId
parseModel(const std::string &name)
{
    if (name == "vgg19") return nn::ModelId::Vgg19;
    if (name == "alexnet") return nn::ModelId::AlexNet;
    if (name == "dcgan") return nn::ModelId::Dcgan;
    if (name == "resnet50") return nn::ModelId::ResNet50;
    if (name == "inception3") return nn::ModelId::InceptionV3;
    if (name == "lstm") return nn::ModelId::Lstm;
    if (name == "word2vec") return nn::ModelId::Word2vec;
    fatal("unknown model '", name, "'");
}

baseline::SystemKind
parseSystem(const std::string &name)
{
    if (name == "cpu") return baseline::SystemKind::CpuOnly;
    if (name == "gpu") return baseline::SystemKind::Gpu;
    if (name == "progr") return baseline::SystemKind::ProgrPimOnly;
    if (name == "fixed") return baseline::SystemKind::FixedPimOnly;
    if (name == "hetero") return baseline::SystemKind::HeteroPim;
    if (name == "neurocube") return baseline::SystemKind::Neurocube;
    fatal("unknown system '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    nn::ModelId model = nn::ModelId::AlexNet;
    baseline::SystemKind system = baseline::SystemKind::HeteroPim;
    std::uint32_t steps = 4;
    double freq_scale = 1.0;
    std::uint32_t progr_pims = 1;
    bool rc = true, op = true;
    bool csv = false, json = false, summary = false, dot = false;
    double fault_rate = 0.0;
    std::uint32_t kill_banks = 0;
    std::uint64_t fault_seed = hpim::sim::defaultSeed;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--model") model = parseModel(next());
        else if (arg == "--system") system = parseSystem(next());
        else if (arg == "--steps")
            steps = static_cast<std::uint32_t>(std::stoul(next()));
        else if (arg == "--freq-scale")
            freq_scale = std::stod(next());
        else if (arg == "--progr-pims")
            progr_pims =
                static_cast<std::uint32_t>(std::stoul(next()));
        else if (arg == "--no-rc") rc = false;
        else if (arg == "--no-op") op = false;
        else if (arg == "--fault-rate")
            fault_rate = std::stod(next());
        else if (arg == "--kill-banks")
            kill_banks =
                static_cast<std::uint32_t>(std::stoul(next()));
        else if (arg == "--fault-seed")
            fault_seed = std::stoull(next());
        else if (arg == "--csv") csv = true;
        else if (arg == "--json") json = true;
        else if (arg == "--summary") summary = true;
        else if (arg == "--dot") dot = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: hpim_cli [--model NAME] [--system NAME]\n"
                << "  [--steps N] [--freq-scale F] [--progr-pims N]\n"
                << "  [--no-rc] [--no-op] [--fault-rate R]\n"
                << "  [--kill-banks N] [--fault-seed S] [--csv]\n"
                << "  [--json] [--summary] [--dot]\n";
            return 0;
        } else {
            fatal("unknown argument '", arg, "' (try --help)");
        }
    }

    nn::Graph graph = nn::buildModel(model);

    if (summary)
        nn::summarize(graph).print(std::cout);
    if (dot) {
        nn::exportDot(graph, std::cout);
        if (!csv && !json && !summary)
            return 0;
    }

    bool faults = fault_rate > 0.0 || kill_banks > 0;
    fatal_if(faults && system == baseline::SystemKind::Gpu,
             "--fault-rate/--kill-banks need a simulated system; the "
             "analytic GPU model has no fault layer");

    rt::ExecutionReport report;
    if (system == baseline::SystemKind::Gpu) {
        report = baseline::runSystem(system, model, steps);
    } else if (faults
               || (system == baseline::SystemKind::HeteroPim
                   && (!rc || !op))) {
        auto config =
            system == baseline::SystemKind::HeteroPim
                ? baseline::makeHetero(true, rc, op, freq_scale,
                                       progr_pims)
                : baseline::makeConfig(system, freq_scale, progr_pims);
        config.steps = steps;
        if (faults) {
            config.faults.enabled = true;
            config.faults.transientRatePerOp = fault_rate;
            config.faults.killBanks = kill_banks;
            config.faults.seed = fault_seed;
        }
        rt::HeteroRuntime runtime(config);
        report = runtime.train(graph).execution;
    } else {
        report = baseline::runSystem(system, model, steps, freq_scale,
                                     progr_pims);
    }

    if (csv) {
        harness::writeCsv(std::cout, {report});
    } else if (json) {
        harness::writeJson(std::cout, report);
        std::cout << '\n';
    } else {
        std::vector<std::string> headers = {
            "config", "workload", "step (ms)", "op", "data mv",
            "sync", "J/step", "avg W", "fixed util"};
        std::vector<std::string> row = {
            report.configName, report.workloadName,
            harness::fmt(report.stepSec * 1e3, 2),
            harness::fmt(report.opSec * 1e3, 2),
            harness::fmt(report.dataMovementSec * 1e3, 2),
            harness::fmt(report.syncSec * 1e3, 2),
            harness::fmt(report.energyPerStepJ, 2),
            harness::fmt(report.averagePowerW, 1),
            harness::fmtPct(report.fixedUtilization * 100.0)};
        if (faults) {
            headers.insert(headers.end(),
                           {"faults", "retries", "degraded",
                            "banks lost"});
            row.insert(row.end(),
                       {std::to_string(report.transientFaults),
                        std::to_string(report.retries),
                        std::to_string(report.opsDegraded),
                        std::to_string(report.banksFailed)});
        }
        harness::TablePrinter table(headers);
        table.addRow(row);
        table.print(std::cout);
    }
    return 0;
}
