/**
 * @file
 * Mixed-workload scenario (paper SectionVI-F): a CNN trains under the
 * full heterogeneous-PIM runtime while a second, non-CNN model (an
 * LSTM language model) trains opportunistically on the CPU and the
 * programmable PIM whenever they idle.
 *
 *   $ ./examples/mixed_workloads
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"
#include "rt/hetero_runtime.hh"

int
main()
{
    using namespace hpim;
    using harness::fmt;

    auto config = baseline::makeConfig(baseline::SystemKind::HeteroPim);
    config.steps = 4;
    rt::HeteroRuntime runtime(config);

    nn::Graph cnn = nn::buildResNet50();
    nn::Graph lstm = nn::buildLstm();

    std::uint32_t guest_steps = runtime.guestSteps(cnn, lstm, 0);
    std::cout << "primary: " << cnn.name() << " x" << config.steps
              << " steps; guest: " << lstm.name() << " x"
              << guest_steps
              << " steps (auto-balanced to the primary's duration)\n";

    auto sequential = runtime.corunSequential(cnn, lstm);
    auto corun = runtime.corun(cnn, lstm);

    harness::TablePrinter table({"mode", "total (ms)", "energy (J)",
                                 "cpu busy (ms)", "progr busy (ms)"});
    auto add = [&table](const char *mode,
                        const rt::ExecutionReport &rep) {
        table.addRow({mode, fmt(rep.makespanSec * 1e3, 1),
                      fmt(rep.totalEnergyJ, 1),
                      fmt(rep.cpuBusySec * 1e3, 1),
                      fmt(rep.progrBusySec * 1e3, 1)});
    };
    add("sequential", sequential.execution);
    add("co-run", corun.execution);
    table.print(std::cout);

    double improvement = (sequential.execution.makespanSec
                          - corun.execution.makespanSec)
                         / corun.execution.makespanSec;
    std::cout << "co-running improves throughput by "
              << harness::fmtPct(100.0 * improvement)
              << " (paper SectionVI-F reports 69%-83%): operations of "
                 "different models have no mutual dependences, so the "
                 "CPU and programmable PIM never idle.\n";
    return 0;
}
