/**
 * @file
 * Quickstart: define a small CNN training step, run it through the
 * heterogeneous-PIM runtime, and read the results.
 *
 *   $ ./examples/quickstart
 *
 * Walks the full pipeline a framework integration would use:
 *   1. build a training-step graph (the unit the runtime schedules),
 *   2. pick a system configuration (the paper's Hetero PIM preset),
 *   3. train: profile -> select offload candidates -> execute,
 *   4. inspect time/energy/utilization, and compare with CPU-only.
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/builder.hh"
#include "rt/hetero_runtime.hh"

int
main()
{
    using namespace hpim;
    using harness::fmt;

    // 1. A LeNet-ish model on 32x32 inputs, batch 32. The builder
    //    emits the forward ops, the TensorFlow-style backward pass,
    //    and one ApplyAdam per parameter tensor.
    nn::CnnBuilder builder("quickstart-cnn",
                           nn::TensorShape{32, 32, 32, 3});
    builder.conv(5, 32, 1).maxPool(2, 2);
    builder.conv(5, 64, 1).maxPool(2, 2);
    builder.fc(512).dropout();
    builder.fc(10, /*relu=*/false);
    nn::Graph step = builder.finish();

    std::cout << "built '" << step.name() << "': " << step.size()
              << " ops per training step, "
              << fmt(step.totalCost().flops() / 1e9, 2)
              << " GFLOP, critical path "
              << step.criticalPathLength() << " ops\n";

    // 2. The paper's heterogeneous PIM: 444 fixed-function units +
    //    one 4-core programmable PIM on the logic die of a 32-slice
    //    3D stack, with dynamic scheduling, RC and OP enabled.
    rt::SystemConfig hetero =
        baseline::makeConfig(baseline::SystemKind::HeteroPim);
    hetero.steps = 8;

    // 3. Train. Step 1 is profiled on the CPU; the dual-index
    //    selector picks the offload candidates; the remaining steps
    //    run under the three-principle scheduler.
    rt::HeteroRuntime runtime(hetero);
    rt::TrainingResult result = runtime.train(step);

    std::cout << "\noffload candidates ("
              << result.selection.candidates.size() << " op types, "
              << fmt(result.selection.coveredTimePct, 1)
              << "% of step time):\n";
    for (const auto &ranked : result.selection.ranking) {
        if (result.selection.isCandidate(ranked.type)) {
            std::cout << "  - " << nn::opName(ranked.type) << " ("
                      << fmt(ranked.timePct, 1) << "% of time)\n";
        }
    }

    // 4. Results, next to the CPU-only baseline.
    rt::SystemConfig cpu_only =
        baseline::makeConfig(baseline::SystemKind::CpuOnly);
    cpu_only.steps = 8;
    auto cpu = rt::HeteroRuntime(cpu_only).train(step).execution;
    const auto &pim = result.execution;

    harness::TablePrinter table(
        {"system", "step (ms)", "energy/step (J)", "fixed util"});
    table.addRow({"CPU", fmt(cpu.stepSec * 1e3, 2),
                  fmt(cpu.energyPerStepJ, 3), "-"});
    table.addRow({"Hetero PIM", fmt(pim.stepSec * 1e3, 2),
                  fmt(pim.energyPerStepJ, 3),
                  harness::fmtPct(pim.fixedUtilization * 100.0)});
    table.print(std::cout);

    std::cout << "speedup: " << fmt(cpu.stepSec / pim.stepSec, 1)
              << "x, energy saving: "
              << fmt(cpu.energyPerStepJ / pim.energyPerStepJ, 1)
              << "x\n";
    return 0;
}
