/**
 * @file
 * hpim_trace -- offline analyzer for traces written by --trace.
 *
 * Usage:
 *   hpim_trace summarize FILE [--top K]
 *   hpim_trace diff A B
 *
 * `summarize` strict-parses a Chrome trace-event file (the format
 * TraceSession::exportChromeTrace emits, docs/OBSERVABILITY.md) and
 * prints, per process scope: per-track utilization over the scope's
 * active window, the top-K span names by total time and by total
 * energy (the "energy_j" span argument), and an idle-gap analysis of
 * each track (largest gap, total idle time between spans).
 *
 * `diff` aggregates both traces the same way and prints every span
 * name whose count, total duration or total energy differs. Exit
 * status: 0 when the aggregates match, 1 when they differ -- so a CI
 * job can assert two runs produced equivalent timelines without
 * requiring byte identity.
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json.hh"
#include "harness/table_printer.hh"
#include "sim/logging.hh"

namespace {

using namespace hpim;
using harness::json::Value;

const char *const kUsage =
    "usage: hpim_trace summarize FILE [--top K]\n"
    "       hpim_trace diff A B";

/** One "X" complete event, microsecond timestamps as on the wire. */
struct Span
{
    std::uint64_t pid = 0;
    std::uint64_t tid = 0;
    double tsUs = 0.0;
    double durUs = 0.0;
    double energyJ = 0.0;
    std::string name;
};

/** A parsed trace: spans, instant counts and track/process names. */
struct Trace
{
    std::vector<Span> spans;
    std::map<std::string, std::uint64_t> instants; ///< name -> count
    std::map<std::uint64_t, std::string> processes;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::string>
        tracks; ///< (pid, tid) -> name
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open trace file '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    fatal_if(!in && !in.eof(), "failed reading '", path, "'");
    return text.str();
}

Trace
loadTrace(const std::string &path)
{
    Value doc;
    try {
        doc = harness::json::parse(readFile(path));
    } catch (const harness::json::Error &e) {
        fatal("'", path, "' is not valid JSON: ", e.what());
    }
    fatal_if(!doc.isObject(), "'", path,
             "' is not a Chrome trace (top level must be an object)");
    const Value &events = doc.at("traceEvents");
    fatal_if(!events.isArray(), "'", path,
             "': traceEvents must be an array");

    Trace trace;
    for (const Value &event : events.array) {
        const std::string &ph = event.at("ph").asString();
        const std::string &name = event.at("name").asString();
        std::uint64_t pid = event.at("pid").asUInt64();
        std::uint64_t tid = event.at("tid").asUInt64();
        if (ph == "M") {
            const Value &args = event.at("args");
            if (name == "process_name")
                trace.processes[pid] = args.at("name").asString();
            else if (name == "thread_name")
                trace.tracks[{pid, tid}] = args.at("name").asString();
            continue;
        }
        if (ph == "X") {
            Span span;
            span.pid = pid;
            span.tid = tid;
            span.tsUs = event.at("ts").asDouble();
            span.durUs = event.at("dur").asDouble();
            span.name = name;
            if (const Value *args = event.find("args")) {
                if (const Value *energy = args->find("energy_j"))
                    span.energyJ = energy->asDouble();
            }
            trace.spans.push_back(std::move(span));
        } else if (ph == "i") {
            ++trace.instants[name];
        }
        // "C" counter samples carry no duration; nothing to aggregate.
    }
    return trace;
}

std::string
fmtUs(double us)
{
    // Simulated runs span micro- to milliseconds; ms keeps the table
    // readable at both ends.
    return harness::fmt(us / 1e3, 3) + " ms";
}

/** Total duration / count / energy of one span name. */
struct NameStats
{
    std::uint64_t count = 0;
    double durUs = 0.0;
    double energyJ = 0.0;
};

std::map<std::string, NameStats>
statsByName(const Trace &trace)
{
    std::map<std::string, NameStats> stats;
    for (const Span &span : trace.spans) {
        NameStats &s = stats[span.name];
        ++s.count;
        s.durUs += span.durUs;
        s.energyJ += span.energyJ;
    }
    return stats;
}

void
printUtilization(const Trace &trace)
{
    struct TrackAgg
    {
        double busyUs = 0.0;
        double firstUs = 0.0;
        double lastUs = 0.0;
        std::uint64_t spans = 0;
        double largestGapUs = 0.0; ///< largest inter-span gap

        double idleUs = 0.0;
        bool seen = false;
    };
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::vector<const Span *>>
        per_track;
    for (const Span &span : trace.spans)
        per_track[{span.pid, span.tid}].push_back(&span);

    std::map<std::pair<std::uint64_t, std::uint64_t>, TrackAgg> agg;
    for (auto &[key, spans] : per_track) {
        // File order is record order (completion), not start order;
        // the gap sweep needs start-sorted spans.
        std::sort(spans.begin(), spans.end(),
                  [](const Span *x, const Span *y) {
                      return x->tsUs < y->tsUs;
                  });
        TrackAgg &a = agg[key];
        for (const Span *span : spans) {
            double end = span->tsUs + span->durUs;
            if (!a.seen) {
                a.seen = true;
                a.firstUs = span->tsUs;
                a.lastUs = end;
            } else {
                if (span->tsUs > a.lastUs) {
                    double gap = span->tsUs - a.lastUs;
                    a.idleUs += gap;
                    a.largestGapUs = std::max(a.largestGapUs, gap);
                }
                a.lastUs = std::max(a.lastUs, end);
            }
            a.busyUs += span->durUs;
            ++a.spans;
        }
    }
    if (agg.empty()) {
        std::cout << "no spans recorded\n";
        return;
    }
    harness::TablePrinter table({"scope", "track", "spans", "busy",
                                 "window", "util", "idle",
                                 "largest gap"});
    for (const auto &[key, a] : agg) {
        double window = a.lastUs - a.firstUs;
        auto pname = trace.processes.find(key.first);
        auto tname = trace.tracks.find(key);
        table.addRow(
            {pname != trace.processes.end()
                 ? pname->second
                 : std::to_string(key.first),
             tname != trace.tracks.end() ? tname->second
                                         : std::to_string(key.second),
             std::to_string(a.spans), fmtUs(a.busyUs), fmtUs(window),
             harness::fmtPct(window > 0.0 ? a.busyUs / window * 100.0
                                          : 100.0),
             fmtUs(a.idleUs), fmtUs(a.largestGapUs)});
    }
    table.print(std::cout);
}

void
printTopK(const Trace &trace, std::size_t top_k)
{
    auto stats = statsByName(trace);
    std::vector<std::pair<std::string, NameStats>> by_time(
        stats.begin(), stats.end());
    auto print = [&](const char *title, auto better) {
        std::sort(by_time.begin(), by_time.end(),
                  [&](const auto &a, const auto &b) {
                      if (better(a.second) != better(b.second))
                          return better(a.second) > better(b.second);
                      return a.first < b.first; // deterministic ties
                  });
        std::cout << "\n" << title << "\n";
        harness::TablePrinter table(
            {"op", "count", "total time", "total energy"});
        std::size_t rows = std::min(top_k, by_time.size());
        for (std::size_t i = 0; i < rows; ++i) {
            const auto &[name, s] = by_time[i];
            table.addRow({name, std::to_string(s.count),
                          fmtUs(s.durUs),
                          harness::fmt(s.energyJ, 6) + " J"});
        }
        table.print(std::cout);
    };
    print("top ops by time",
          [](const NameStats &s) { return s.durUs; });
    print("top ops by energy",
          [](const NameStats &s) { return s.energyJ; });
}

void
printInstants(const Trace &trace)
{
    if (trace.instants.empty())
        return;
    std::cout << "\ninstant events\n";
    harness::TablePrinter table({"event", "count"});
    for (const auto &[name, count] : trace.instants)
        table.addRow({name, std::to_string(count)});
    table.print(std::cout);
}

int
summarize(const std::string &path, std::size_t top_k)
{
    Trace trace = loadTrace(path);
    std::cout << path << ": " << trace.spans.size() << " spans, "
              << trace.processes.size() << " scopes, "
              << trace.tracks.size() << " scope-track rows\n\n";
    printUtilization(trace);
    printTopK(trace, top_k);
    printInstants(trace);
    return 0;
}

int
diff(const std::string &path_a, const std::string &path_b)
{
    Trace a = loadTrace(path_a);
    Trace b = loadTrace(path_b);
    auto stats_a = statsByName(a);
    auto stats_b = statsByName(b);

    std::vector<std::string> names;
    for (const auto &[name, s] : stats_a)
        names.push_back(name);
    for (const auto &[name, s] : stats_b) {
        if (!stats_a.count(name))
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());

    harness::TablePrinter table({"op", "count A", "count B", "time A",
                                 "time B", "energy A", "energy B"});
    std::size_t differing = 0;
    for (const std::string &name : names) {
        NameStats sa = stats_a.count(name) ? stats_a[name]
                                           : NameStats{};
        NameStats sb = stats_b.count(name) ? stats_b[name]
                                           : NameStats{};
        if (sa.count == sb.count && sa.durUs == sb.durUs
            && sa.energyJ == sb.energyJ)
            continue;
        ++differing;
        table.addRow({name, std::to_string(sa.count),
                      std::to_string(sb.count), fmtUs(sa.durUs),
                      fmtUs(sb.durUs),
                      harness::fmt(sa.energyJ, 6) + " J",
                      harness::fmt(sb.energyJ, 6) + " J"});
    }
    if (differing == 0 && a.instants == b.instants) {
        std::cout << "traces equivalent: " << a.spans.size()
                  << " spans, " << names.size()
                  << " distinct ops, same aggregate time and energy\n";
        return 0;
    }
    if (differing > 0) {
        std::cout << differing << " of " << names.size()
                  << " ops differ:\n";
        table.print(std::cout);
    }
    for (const auto &[name, count] : b.instants) {
        std::uint64_t count_a =
            a.instants.count(name) ? a.instants.at(name) : 0;
        if (count_a != count)
            std::cout << "instant '" << name << "': " << count_a
                      << " vs " << count << "\n";
    }
    for (const auto &[name, count] : a.instants) {
        if (!b.instants.count(name))
            std::cout << "instant '" << name << "': " << count
                      << " vs 0\n";
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) {
        std::cout << kUsage << '\n';
        return 0;
    }
    fatal_if(args.empty(), "missing command\n", kUsage);

    if (args[0] == "summarize") {
        fatal_if(args.size() < 2, "summarize needs a trace file\n",
                 kUsage);
        std::size_t top_k = 10;
        for (std::size_t i = 2; i < args.size(); ++i) {
            if (args[i] == "--top") {
                fatal_if(i + 1 >= args.size(), "--top needs a value\n",
                         kUsage);
                char *end = nullptr;
                unsigned long long k =
                    std::strtoull(args[++i].c_str(), &end, 10);
                fatal_if(end == args[i].c_str() || *end != '\0'
                             || k == 0,
                         "--top expects a positive integer, got '",
                         args[i], "'\n", kUsage);
                top_k = static_cast<std::size_t>(k);
            } else {
                fatal("unknown argument '", args[i], "'\n", kUsage);
            }
        }
        return summarize(args[1], top_k);
    }
    if (args[0] == "diff") {
        fatal_if(args.size() != 3, "diff needs exactly two trace "
                                   "files\n",
                 kUsage);
        return diff(args[1], args[2]);
    }
    fatal("unknown command '", args[0], "'\n", kUsage);
}
