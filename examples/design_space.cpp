/**
 * @file
 * Architect's view: explore the logic-die design space (how many
 * fixed-function units fit beside how many ARM cores), place the
 * units over the bank grid with the paper's edge/corner bias, check
 * the thermal envelope, and measure how each design point trains
 * AlexNet.
 *
 *   $ ./examples/design_space [--jobs N]
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "model/area_power.hh"
#include "model/thermal.hh"
#include "nn/models.hh"
#include "pim/placement.hh"
#include "rt/hetero_runtime.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using harness::fmt;

    model::LogicDieBudget budget;
    model::UnitCosts costs;

    struct DesignRow
    {
        model::DesignPoint point;
        double peakTempC;
        double stepSec;
    };

    // Each design point is an independent place + thermal-solve +
    // simulate pipeline; fan them out on the experiment engine.
    const std::vector<std::uint32_t> core_counts = {1, 4, 16};
    harness::SweepRunner runner(harness::parseSweepArgs(argc, argv));
    auto rows = runner.map(
        core_counts.size(), [&](std::size_t i, sim::Rng &) {
            std::uint32_t cores = core_counts[i];
            auto point = model::exploreDesign(budget, costs, cores);

            // Place the units and solve the thermal field.
            pim::BankGrid grid;
            auto placement =
                pim::placeUnits(grid, point.fixedUnits, 0.35);
            auto thermal = model::solveThermal(grid, placement,
                                               costs.fixedUnitPowerW);

            // Run the design point: cores/4 programmable PIMs, the
            // rest of the area as fixed units.
            auto config = baseline::makeHetero(true, true, true, 1.0,
                                               std::max(1u, cores / 4));
            config.fixed.totalUnits = point.fixedUnits;
            config.steps = 4;
            rt::HeteroRuntime runtime(config);
            auto rep = runtime.train(nn::buildAlexNet()).execution;
            return DesignRow{point, thermal.maxC, rep.stepSec};
        });

    harness::TablePrinter table(
        {"ARM cores", "fixed units", "area mm^2", "peak W",
         "peak temp C", "AlexNet step (ms)"});
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
        const DesignRow &row = rows[i];
        table.addRow({std::to_string(core_counts[i]),
                      std::to_string(row.point.fixedUnits),
                      fmt(row.point.areaUsedMm2, 1),
                      fmt(row.point.peakPowerW, 2),
                      fmt(row.peakTempC, 1),
                      fmt(row.stepSec * 1e3, 1)});
    }
    table.print(std::cout);
    harness::printSweepSummary(std::cout, runner.stats());

    std::cout << "\nThe paper's conclusion holds: one programmable "
                 "PIM next to the largest feasible fixed-function "
                 "pool (444 units) is the sweet spot; extra ARM "
                 "cores displace the units doing the heavy "
                 "multiply/add lifting.\n";
    return 0;
}
