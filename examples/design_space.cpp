/**
 * @file
 * Architect's view: explore the logic-die design space (how many
 * fixed-function units fit beside how many ARM cores), place the
 * units over the bank grid with the paper's edge/corner bias, check
 * the thermal envelope, and measure how each design point trains
 * AlexNet.
 *
 *   $ ./examples/design_space
 */

#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "model/area_power.hh"
#include "model/thermal.hh"
#include "nn/models.hh"
#include "pim/placement.hh"
#include "rt/hetero_runtime.hh"

int
main()
{
    using namespace hpim;
    using harness::fmt;

    model::LogicDieBudget budget;
    model::UnitCosts costs;

    harness::TablePrinter table(
        {"ARM cores", "fixed units", "area mm^2", "peak W",
         "peak temp C", "AlexNet step (ms)"});

    for (std::uint32_t cores : {1u, 4u, 16u}) {
        auto point = model::exploreDesign(budget, costs, cores);

        // Place the units and solve the thermal field.
        pim::BankGrid grid;
        auto placement =
            pim::placeUnits(grid, point.fixedUnits, 0.35);
        auto thermal = model::solveThermal(grid, placement,
                                           costs.fixedUnitPowerW);

        // Run the design point: cores/4 programmable PIMs, the rest
        // of the area as fixed units.
        auto config = baseline::makeHetero(true, true, true, 1.0,
                                           std::max(1u, cores / 4));
        config.fixed.totalUnits = point.fixedUnits;
        config.steps = 4;
        rt::HeteroRuntime runtime(config);
        auto rep = runtime.train(nn::buildAlexNet()).execution;

        table.addRow({std::to_string(cores),
                      std::to_string(point.fixedUnits),
                      fmt(point.areaUsedMm2, 1),
                      fmt(point.peakPowerW, 2),
                      fmt(thermal.maxC, 1),
                      fmt(rep.stepSec * 1e3, 1)});
    }
    table.print(std::cout);

    std::cout << "\nThe paper's conclusion holds: one programmable "
                 "PIM next to the largest feasible fixed-function "
                 "pool (444 units) is the sweet spot; extra ARM "
                 "cores displace the units doing the heavy "
                 "multiply/add lifting.\n";
    return 0;
}
