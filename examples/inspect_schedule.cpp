/**
 * @file
 * Developer tooling tour: record the runtime's schedule for an
 * AlexNet step, dump it as CSV and Chrome-trace JSON (load the JSON
 * in chrome://tracing or Perfetto), print the generated OpenCL-C for
 * one complex op, and export the run report as CSV/JSON.
 *
 *   $ ./examples/inspect_schedule [out_dir]
 */

#include <fstream>
#include <iostream>

#include "baseline/presets.hh"
#include "cl/codegen.hh"
#include "harness/failpoint.hh"
#include "harness/report_io.hh"
#include "sim/logging.hh"
#include "nn/models.hh"
#include "rt/executor.hh"
#include "rt/hetero_runtime.hh"
#include "rt/schedule_trace.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;

    std::string out_dir = argc > 1 ? argv[1] : ".";

    // ---- Record a scheduled run.
    auto config = baseline::makeConfig(baseline::SystemKind::HeteroPim);
    auto graph = nn::buildAlexNet();

    rt::HeteroRuntime runtime(config);
    auto prepared = runtime.train(graph, 1); // profile + selection
    rt::Executor executor(config, &prepared.selection);
    rt::ScheduleTrace trace;
    executor.attachTrace(&trace);
    auto report = executor.run(graph, 2);

    std::cout << "recorded " << trace.size()
              << " scheduled intervals over "
              << report.makespanSec * 1e3 << " ms\n";
    std::cout << "device busy seconds from the trace:\n";
    for (auto placement :
         {rt::PlacedOn::Cpu, rt::PlacedOn::FixedPool,
          rt::PlacedOn::ProgrPim, rt::PlacedOn::ProgrRecursive}) {
        std::cout << "  " << rt::placedOnName(placement) << ": "
                  << trace.busySeconds(placement) << " s\n";
    }

    std::ofstream csv(out_dir + "/schedule.csv");
    trace.dumpCsv(csv);
    std::ofstream chrome(out_dir + "/schedule.json");
    trace.dumpChromeTrace(chrome);
    std::cout << "wrote " << out_dir << "/schedule.csv and "
              << out_dir << "/schedule.json (chrome://tracing)\n";

    // ---- Report export.
    try {
        std::ofstream rep_csv(out_dir + "/report.csv");
        harness::writeCsv(rep_csv, {report});
        std::ofstream rep_json(out_dir + "/report.json");
        harness::writeJson(rep_json, report);
    } catch (const harness::IoError &e) {
        fatal("cannot export reports: ", e.what());
    }
    std::cout << "wrote " << out_dir << "/report.{csv,json}\n";

    // ---- What the programmer writes vs what the compiler emits.
    auto sources =
        cl::generateKernelSources(nn::OpType::Conv2DBackpropFilter);
    std::cout << "\n---- programmer-written kernel ("
              << sources.full.name << ") ----\n"
              << sources.full.source
              << "\n---- compiler-extracted fixed-function sub-kernel "
                 "----\n"
              << sources.fixedSubKernels[0].source
              << "\n---- rewritten programmable-PIM kernel (recursive "
                 "launch, Fig. 6) ----\n"
              << sources.progrKernel.source;
    return 0;
}
