/**
 * @file
 * Bring-your-own-model: assemble a training-step graph op by op with
 * the public nn::Builder (docs/GRAPHS.md), round-trip it through the
 * JSON graph format (nn/graph_io.hh) the way `hpim_cli --graph`
 * would, drive the extended-OpenCL layer directly -- four-binary
 * compilation, command queues, the Table-III low-level API -- and
 * then let the runtime schedule it.
 *
 *   $ ./examples/custom_model
 */

#include <iostream>

#include "baseline/presets.hh"
#include "cl/kernel.hh"
#include "cl/lowlevel_api.hh"
#include "cl/platform.hh"
#include "harness/table_printer.hh"
#include "mem/address_mapping.hh"
#include "nn/graph_builder.hh"
#include "nn/graph_io.hh"
#include "pim/placement.hh"
#include "rt/hetero_runtime.hh"

int
main()
{
    using namespace hpim;
    using harness::fmt;

    // ---- 1. A two-tower recommendation-style model through the
    //         op-by-op Builder: two dense towers over pre-gathered
    //         embeddings, an elementwise interaction, and a softmax
    //         loss. trainingStep() emits the backward pass and one
    //         ApplyAdam per parameter tensor for us.
    const std::int64_t batch = 256, dim = 128;
    nn::Builder b("two-tower");
    auto user = b.input(nn::TensorShape{batch, dim});
    auto item = b.input(nn::TensorShape{batch, dim});
    auto user_mlp = b.dense(user, 256);
    auto item_mlp = b.dense(item, 256);
    auto score = b.mul(user_mlp, item_mlp);
    nn::Graph graph = b.trainingStep(score, nn::Optimizer::Adam);

    std::cout << "custom graph: " << graph.size() << " ops, "
              << fmt(graph.totalCost().flops() / 1e9, 3)
              << " GFLOP per step\n";

    // ---- 2. Round-trip through the versioned JSON graph format --
    //         exactly what `hpim_cli --dump-graph` writes and
    //         `hpim_cli --graph` / hpim_serve's "graph" payload load.
    //         The loader replays the same add() sequence, so the
    //         structural signature (the memo-cache/journal identity)
    //         survives serialization.
    std::string json = nn::graphToJson(graph);
    nn::Graph reloaded = nn::loadGraph(json);
    std::cout << "\nJSON round trip: " << json.size() << " bytes, "
              << reloaded.size() << " ops, signatures "
              << (reloaded.signature() == graph.signature()
                      ? "identical"
                      : "DIFFER (bug!)")
              << "\n";

    // ---- 3. Peek under the hood of the programming model: compile
    //          one op into its four binaries (paper Fig. 4).
    nn::OpId grad_w = nn::invalidOp;
    for (nn::OpId id = 0; id < graph.size(); ++id) {
        if (graph.op(id).type == nn::OpType::MatMulGradWeights) {
            grad_w = id;
            break;
        }
    }
    cl::Kernel kernel;
    kernel.name = graph.op(grad_w).label;
    kernel.opType = nn::OpType::MatMulGradWeights;
    kernel.cost = graph.op(grad_w).cost;
    kernel.parallelism = graph.op(grad_w).parallelism;
    cl::BinarySet binaries = cl::compileKernel(kernel);
    std::cout << "\ncompiled '" << kernel.name << "' into "
              << binaries.binaries.size() << " binaries:\n";
    for (const auto &binary : binaries.binaries) {
        std::cout << "  " << binary.symbol << " ("
                  << fmt(binary.workOps / 1e6, 2) << "M ops, "
                  << binary.recursiveCalls << " recursive calls)\n";
    }

    // ---- 4. The Table-III low-level API: offload near the data.
    mem::AddressMapping mapping(32, 8, 16384, 256,
                                mem::Interleave::RoBaVaCo);
    pim::StatusRegisterFile regs(
        32, pim::placeUnits(pim::BankGrid{}, 444, 0.35).unitsPerBank);
    cl::PimApi api(regs, mapping);
    auto handle = api.offloadFixed(/*data_base=*/0x10000,
                                   /*data_bytes=*/batch * dim * 4,
                                   /*units_needed=*/127);
    auto location = api.queryLocation(handle);
    std::cout << "\nlow-level offload landed on "
              << location.fixedBanks.size() << " bank(s) holding "
              << location.dataBanks.size() << " data bank(s); "
              << regs.totalFreeUnits() << "/444 units still free\n";
    api.complete(handle);

    // ---- 5. Full runtime scheduling of the *reloaded* step: the
    //         JSON copy schedules identically to the built one.
    auto config = baseline::makeConfig(baseline::SystemKind::HeteroPim);
    config.steps = 16;
    rt::HeteroRuntime runtime(config);
    auto result = runtime.train(reloaded);
    std::cout << "\nscheduled step: "
              << fmt(result.execution.stepSec * 1e6, 1) << " us, "
              << fmt(result.execution.energyPerStepJ * 1e3, 2)
              << " mJ, placements:";
    for (const auto &[placement, count] :
         result.execution.opsByPlacement) {
        std::cout << "  " << rt::placedOnName(placement) << "="
                  << count;
    }
    std::cout << '\n';
    return 0;
}
