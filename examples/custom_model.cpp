/**
 * @file
 * Bring-your-own-model: assemble a training-step graph op by op with
 * the low-level Graph API (rather than CnnBuilder), drive the
 * extended-OpenCL layer directly -- four-binary compilation, command
 * queues, the Table-III low-level API -- and then let the runtime
 * schedule it.
 *
 *   $ ./examples/custom_model
 */

#include <iostream>

#include "baseline/presets.hh"
#include "cl/kernel.hh"
#include "cl/lowlevel_api.hh"
#include "cl/platform.hh"
#include "harness/table_printer.hh"
#include "mem/address_mapping.hh"
#include "nn/graph.hh"
#include "pim/placement.hh"
#include "rt/hetero_runtime.hh"

int
main()
{
    using namespace hpim;
    using harness::fmt;

    // ---- 1. A two-tower recommendation-style model, by hand.
    nn::Graph graph("two-tower");
    const std::int64_t batch = 256, dim = 128;

    auto user = graph.add(
        nn::OpType::EmbeddingLookup, "user/Lookup",
        nn::embeddingCost(nn::OpType::EmbeddingLookup, batch, dim),
        nn::fixedParallelism(nn::OpType::EmbeddingLookup, 1, 0.0));
    auto item = graph.add(
        nn::OpType::EmbeddingLookup, "item/Lookup",
        nn::embeddingCost(nn::OpType::EmbeddingLookup, batch, dim),
        nn::fixedParallelism(nn::OpType::EmbeddingLookup, 1, 0.0));
    auto user_mlp = graph.add(
        nn::OpType::MatMul, "user/MatMul",
        nn::matmulCost(batch, dim, 256),
        nn::fixedParallelism(nn::OpType::MatMul, 64,
                             double(batch * 256)),
        {user});
    auto item_mlp = graph.add(
        nn::OpType::MatMul, "item/MatMul",
        nn::matmulCost(batch, dim, 256),
        nn::fixedParallelism(nn::OpType::MatMul, 64,
                             double(batch * 256)),
        {item});
    auto score = graph.add(
        nn::OpType::Mul, "score/Mul",
        nn::elementwiseCost(nn::OpType::Mul,
                            nn::TensorShape{batch, 256}),
        nn::fixedParallelism(nn::OpType::Mul, 1, double(batch * 256)),
        {user_mlp, item_mlp});
    auto loss = graph.add(
        nn::OpType::Softmax, "loss/Softmax",
        nn::softmaxCost(nn::OpType::Softmax, batch, 256),
        nn::fixedParallelism(nn::OpType::Softmax, 1, 0.0), {score});
    auto grad_w = graph.add(
        nn::OpType::MatMulGradWeights, "user/MatMul_grad",
        nn::matmulCost(dim, batch, 256),
        nn::fixedParallelism(nn::OpType::MatMulGradWeights, 64,
                             double(dim * 256)),
        {loss});
    graph.add(nn::OpType::ApplyAdam, "user/ApplyAdam",
              nn::applyAdamCost(dim * 256),
              nn::fixedParallelism(nn::OpType::ApplyAdam, 1, 0.0),
              {grad_w});

    std::cout << "custom graph: " << graph.size() << " ops, "
              << fmt(graph.totalCost().flops() / 1e9, 3)
              << " GFLOP per step\n";

    // ---- 2. Peek under the hood of the programming model: compile
    //          one op into its four binaries (paper Fig. 4).
    cl::Kernel kernel;
    kernel.name = "user/MatMul_grad";
    kernel.opType = nn::OpType::MatMulGradWeights;
    kernel.cost = graph.op(grad_w).cost;
    kernel.parallelism = graph.op(grad_w).parallelism;
    cl::BinarySet binaries = cl::compileKernel(kernel);
    std::cout << "\ncompiled '" << kernel.name << "' into "
              << binaries.binaries.size() << " binaries:\n";
    for (const auto &binary : binaries.binaries) {
        std::cout << "  " << binary.symbol << " ("
                  << fmt(binary.workOps / 1e6, 2) << "M ops, "
                  << binary.recursiveCalls << " recursive calls)\n";
    }

    // ---- 3. The Table-III low-level API: offload near the data.
    mem::AddressMapping mapping(32, 8, 16384, 256,
                                mem::Interleave::RoBaVaCo);
    pim::StatusRegisterFile regs(
        32, pim::placeUnits(pim::BankGrid{}, 444, 0.35).unitsPerBank);
    cl::PimApi api(regs, mapping);
    auto handle = api.offloadFixed(/*data_base=*/0x10000,
                                   /*data_bytes=*/batch * dim * 4,
                                   /*units_needed=*/127);
    auto location = api.queryLocation(handle);
    std::cout << "\nlow-level offload landed on "
              << location.fixedBanks.size() << " bank(s) holding "
              << location.dataBanks.size() << " data bank(s); "
              << regs.totalFreeUnits() << "/444 units still free\n";
    api.complete(handle);

    // ---- 4. Full runtime scheduling of the custom step.
    auto config = baseline::makeConfig(baseline::SystemKind::HeteroPim);
    config.steps = 16;
    rt::HeteroRuntime runtime(config);
    auto result = runtime.train(graph);
    std::cout << "\nscheduled step: "
              << fmt(result.execution.stepSec * 1e6, 1) << " us, "
              << fmt(result.execution.energyPerStepJ * 1e3, 2)
              << " mJ, placements:";
    for (const auto &[placement, count] :
         result.execution.opsByPlacement) {
        std::cout << "  " << rt::placedOnName(placement) << "="
                  << count;
    }
    std::cout << '\n';
    return 0;
}
