/**
 * @file
 * Author the two committed example workloads (examples/graphs/) with
 * the op-by-op nn::Builder and export them through the versioned
 * JSON graph format (docs/GRAPHS.md):
 *
 *  - transformer_train.json : one encoder block + classifier head,
 *    closed as a full training step (backward pass + ApplyAdam per
 *    parameter) -- the kind of attention-heavy workload the paper's
 *    CNN/RNN model zoo does not cover.
 *  - edge_cnn_infer.json    : a small batch-1 CNN closed forward-only
 *    -- an inference (latency) workload in the spirit of the
 *    PIM-inference line of work in PAPERS.md.
 *
 * CI re-runs this exporter and diffs the output against the committed
 * files, so the committed graphs can never drift from the Builder.
 *
 *   $ ./examples/export_graphs [OUTPUT_DIR]   (default examples/graphs)
 */

#include <filesystem>
#include <iostream>
#include <string>

#include "nn/graph_builder.hh"
#include "nn/graph_io.hh"

namespace {

/**
 * One pre-norm-free transformer encoder block + classifier head over
 * 1024 tokens of model width 256 (batch x seq folded into the token
 * axis, as the cost model sees only element counts).
 */
hpim::nn::Graph
buildTransformerTrain()
{
    using namespace hpim::nn;
    Builder b("transformer-train");
    const std::int64_t tokens = 1024, width = 256;

    auto x = b.input(TensorShape{tokens, width});

    // Single-head self-attention: Q/K/V projections, scores, mix.
    auto q = b.dense(x, width, /*relu=*/false);
    auto k = b.dense(x, width, /*relu=*/false);
    auto v = b.dense(x, width, /*relu=*/false);
    auto scores = b.matmul(q, b.transpose(k)); // [tokens, tokens]
    auto weights = b.softmax(scores);
    auto mixed = b.matmul(weights, v);         // [tokens, width]
    auto proj = b.dense(mixed, width, /*relu=*/false);
    auto attn_out = b.layerNorm(b.add(proj, x));

    // Position-wise feed-forward with a residual link.
    auto ffn = b.dense(attn_out, 4 * width);
    auto ffn_out = b.dense(ffn, width, /*relu=*/false);
    auto block_out = b.layerNorm(b.add(ffn_out, attn_out));

    // Classifier head; trainingStep adds the softmax loss, the
    // backward pass, and one ApplyAdam per parameter tensor.
    auto logits = b.dense(block_out, 1000, /*relu=*/false);
    return b.trainingStep(logits, Optimizer::Adam);
}

/** A small batch-1 CNN closed forward-only (inference latency). */
hpim::nn::Graph
buildEdgeCnnInfer()
{
    using namespace hpim::nn;
    Builder b("edge-cnn-infer");
    auto x = b.input(TensorShape{1, 64, 64, 3});
    x = b.conv2d(x, 3, 32, 1);
    x = b.maxPool(x, 2, 2);
    x = b.conv2d(x, 3, 64, 1);
    x = b.maxPool(x, 2, 2);
    x = b.conv2d(x, 3, 128, 2);
    x = b.avgPool(x, 8, 8);
    x = b.flatten(x);
    x = b.dense(x, 256);
    x = b.dense(x, 10, /*relu=*/false);
    x = b.softmax(x);
    return b.finishForward();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = argc > 1 ? argv[1] : "examples/graphs";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::cerr << "export_graphs: cannot create '" << dir
                  << "': " << ec.message() << "\n";
        return 1;
    }

    struct
    {
        const char *file;
        hpim::nn::Graph graph;
    } exports[] = {
        {"transformer_train.json", buildTransformerTrain()},
        {"edge_cnn_infer.json", buildEdgeCnnInfer()},
    };

    for (auto &entry : exports) {
        std::string path = dir + "/" + entry.file;
        try {
            hpim::nn::saveGraphFile(path, entry.graph);
        } catch (const hpim::nn::GraphParseError &e) {
            std::cerr << "export_graphs: " << e.what() << "\n";
            return 1;
        }
        std::cout << path << ": " << entry.graph.size() << " ops ("
                  << entry.graph.name() << ")\n";
    }
    return 0;
}
