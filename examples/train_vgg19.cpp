/**
 * @file
 * Train VGG-19 (the paper's flagship workload) on every evaluated
 * system and print the full comparison: time breakdown, energy,
 * power, placements, launches -- everything SectionVI reports.
 *
 *   $ ./examples/train_vgg19 [steps]
 */

#include <cstdlib>
#include <iostream>

#include "baseline/presets.hh"
#include "harness/table_printer.hh"
#include "nn/models.hh"

int
main(int argc, char **argv)
{
    using namespace hpim;
    using baseline::SystemKind;
    using harness::fmt;

    std::uint32_t steps = 4;
    if (argc > 1)
        steps = static_cast<std::uint32_t>(std::atoi(argv[1]));
    if (steps == 0)
        steps = 4;

    nn::Graph graph = nn::buildVgg19();
    std::cout << "VGG-19 training step: " << graph.size() << " ops, "
              << fmt(graph.totalCost().flops() / 1e12, 2)
              << " TFLOP, "
              << fmt(graph.totalCost().bytes() / 1e9, 2)
              << " GB of tensor traffic (batch 32)\n";

    const std::vector<SystemKind> systems = {
        SystemKind::CpuOnly, SystemKind::Gpu, SystemKind::ProgrPimOnly,
        SystemKind::FixedPimOnly, SystemKind::HeteroPim,
        SystemKind::Neurocube};

    harness::TablePrinter table(
        {"system", "step (ms)", "op", "data mv", "sync",
         "J/step", "avg W", "fixed util", "host launches"});
    double hetero_step = 0.0;
    for (SystemKind kind : systems) {
        auto rep = baseline::runSystem(kind, nn::ModelId::Vgg19, steps);
        if (kind == SystemKind::HeteroPim)
            hetero_step = rep.stepSec;
        table.addRow(
            {baseline::systemName(kind), fmt(rep.stepSec * 1e3, 1),
             fmt(rep.opSec * 1e3, 1),
             fmt(rep.dataMovementSec * 1e3, 1),
             fmt(rep.syncSec * 1e3, 2), fmt(rep.energyPerStepJ, 1),
             fmt(rep.averagePowerW, 1),
             kind == SystemKind::Gpu
                 ? "-"
                 : harness::fmtPct(rep.fixedUtilization * 100.0),
             std::to_string(rep.hostLaunches)});
    }
    table.print(std::cout);

    std::cout << "\nHetero PIM trains one VGG-19 step in "
              << fmt(hetero_step * 1e3, 1) << " ms; at 10k steps "
              << "that is " << fmt(hetero_step * 10000.0 / 60.0, 1)
              << " minutes of simulated training.\n";
    return 0;
}
