/**
 * @file
 * hpim_serve -- the simulation-as-a-service daemon (docs/SERVING.md).
 *
 * Usage:
 *   hpim_serve --socket PATH [--workers N] [--admission-limit N]
 *              [--max-frame-bytes N] [--io-timeout-ms MS]
 *              [--drain-grace-ms MS] [--max-connections N]
 *              [--sim-cache-max-entries N]
 *              [--trace FILE] [--failpoints SPEC]
 *
 * Listens on a Unix-domain socket for framed JSON requests (ping /
 * stats / simulate) and executes simulations on a worker pool with a
 * shared memo cache. SIGTERM or SIGINT starts a graceful drain: new
 * work is rejected with a typed `shutting_down` error, in-flight
 * requests finish (or are unwound once --drain-grace-ms expires),
 * every response is flushed, and the daemon exits 0.
 *
 * Talk to it with `hpim_cli --connect PATH ...` or bench/serve_load.
 */

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/failpoint.hh"
#include "serve/server.hh"
#include "sim/logging.hh"
#include "sim/memo_cache.hh"

namespace {

const char *const kUsage =
    "usage: hpim_serve --socket PATH [--workers N]\n"
    "  [--admission-limit N] [--max-frame-bytes N]\n"
    "  [--io-timeout-ms MS] [--drain-grace-ms MS]\n"
    "  [--max-connections N] [--sim-cache-max-entries N]\n"
    "  [--trace FILE] [--failpoints SPEC]\n"
    "  --sim-cache-max-entries caps the shared memo cache (oldest\n"
    "  entries evicted first; 0 = unbounded; stats show evictions),\n"
    "  --failpoints arms deterministic host-IO fault injection,\n"
    "  e.g. 'serve.send=every(3):eintr' (docs/RESILIENCE.md)";

hpim::serve::Server *g_server = nullptr;

extern "C" void
onStopSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop();
}

std::uint64_t
parseU64(const std::string &flag, const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()
        || text[0] == '-' || errno == ERANGE)
        fatal(flag, " expects an unsigned integer, got '", text,
              "'\n", kUsage);
    return value;
}

double
parseDouble(const std::string &flag, const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size()
        || value < 0.0)
        fatal(flag, " expects a non-negative number, got '", text,
              "'\n", kUsage);
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    hpim::serve::ServerOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for ", arg, "\n",
                     kUsage);
            return argv[++i];
        };
        if (arg == "--socket") options.socketPath = next();
        else if (arg == "--workers")
            options.workers =
                static_cast<std::uint32_t>(parseU64(arg, next()));
        else if (arg == "--admission-limit")
            options.admissionLimit =
                static_cast<std::size_t>(parseU64(arg, next()));
        else if (arg == "--max-frame-bytes")
            options.maxFrameBytes =
                static_cast<std::size_t>(parseU64(arg, next()));
        else if (arg == "--io-timeout-ms")
            options.ioTimeoutMs = parseDouble(arg, next());
        else if (arg == "--drain-grace-ms")
            options.drainGraceMs = parseDouble(arg, next());
        else if (arg == "--max-connections")
            options.maxConnections =
                static_cast<std::size_t>(parseU64(arg, next()));
        else if (arg == "--sim-cache-max-entries")
            hpim::sim::MemoCache::instance().setMaxEntries(
                static_cast<std::size_t>(parseU64(arg, next())));
        else if (arg == "--trace") options.traceFile = next();
        else if (arg == "--failpoints") {
            try {
                hpim::harness::configureFailPoints(next());
            } catch (const hpim::harness::FailPointError &e) {
                fatal("--failpoints: ", e.what(), "\n", kUsage);
            }
        } else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage << '\n';
            return 0;
        } else {
            fatal("unknown argument '", arg, "' (try --help)\n",
                  kUsage);
        }
    }
    fatal_if(options.socketPath.empty(), "--socket is required\n",
             kUsage);

    hpim::serve::Server server(std::move(options));
    g_server = &server;

    struct sigaction action{};
    action.sa_handler = onStopSignal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);

    server.run();
    g_server = nullptr;
    return 0;
}
